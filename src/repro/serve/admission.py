"""Async admission control in front of the serving engine.

The engine already has one bounded queue (``max_queue``, shedding
``overflow`` past it).  :class:`AsyncAdmission` puts a second, *async*
bounded queue ahead of it — the front door a network handler would
``await`` on — and an :class:`AdmissionPolicy` that grades every
arrival down a backpressure ladder **before** it touches engine state
(DESIGN.md §15):

``admit``
    Queue depth is healthy and the deadline has headroom: the query
    enters the engine queue with full purchase rights.
``degrade``
    The tier is under pressure (depth at/above ``degrade_depth``) or
    the deadline is too thin to be worth buying for (headroom below
    ``min_headroom_s``): the query is admitted *cache-only* — it is
    served from whatever the shared cache holds, costs nothing, and
    any shortfall degrades with reason ``"admission"`` instead of
    being dropped.  Degrading beats shedding: the caller still gets
    estimates, intervals and an honest completeness figure.
``reject``
    Depth reached ``reject_depth`` (or the deadline is already
    unmeetable): a 429-style refusal.  The engine records a
    ``shed``/``rejected`` result so the report never silently loses a
    query.

The ladder itself is pure arithmetic over ``(depth, headroom)`` — the
admission *decision* sequence for a given arrival order is therefore
deterministic, which is what the bench gates rely on.  Only the
``await`` points are asynchronous: :meth:`AsyncAdmission.offer`
applies backpressure by blocking (asynchronously) when the front
queue is full, and :meth:`AsyncAdmission.serve` runs the engine's
synchronous wave loop in an executor so an event loop serving other
traffic is never blocked by wave execution.

:func:`admit_and_serve` is the synchronous convenience used by the CLI
and benchmarks: it spins up an event loop, pushes a prepared arrival
list through the front door (producer/consumer, so backpressure is
actually exercised), and returns the report plus the decision tally.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.model import PreprocessingPlan
from repro.errors import ConfigurationError
from repro.serve.report import QueryRequest, ServeReport

if TYPE_CHECKING:
    from repro.serve.engine import ServeEngine

#: Admission decisions, one per ladder rung.
ADMIT = "admit"
DEGRADE = "degrade"
REJECT = "reject"
DECISIONS = (ADMIT, DEGRADE, REJECT)

#: End-of-arrivals sentinel for the producer/consumer pump.
_DONE = object()


@dataclass(frozen=True)
class AdmissionPolicy:
    """The backpressure ladder's thresholds.

    Parameters
    ----------
    reject_depth:
        Combined queue depth (front queue + engine queue) at which new
        arrivals are rejected outright.
    degrade_depth:
        Depth at which arrivals are admitted cache-only.  Must not
        exceed ``reject_depth`` — the ladder degrades before it
        rejects.
    min_headroom_s:
        Deadline headroom below which an arrival is degraded even at a
        healthy depth: a query without enough time left to wait for a
        purchase wave is served from cache instead.  ``0.0`` (default)
        disables the rung; a deadline of exactly zero is always
        rejected (it is unmeetable by construction).
    """

    reject_depth: int = 64
    degrade_depth: int = 32
    min_headroom_s: float = 0.0

    def __post_init__(self) -> None:
        if self.reject_depth < 1:
            raise ConfigurationError(
                f"reject_depth must be >= 1, got {self.reject_depth}"
            )
        if self.degrade_depth < 1:
            raise ConfigurationError(
                f"degrade_depth must be >= 1, got {self.degrade_depth}"
            )
        if self.degrade_depth > self.reject_depth:
            raise ConfigurationError(
                f"degrade_depth ({self.degrade_depth}) must not exceed "
                f"reject_depth ({self.reject_depth}): the ladder degrades "
                f"before it rejects"
            )
        if not math.isfinite(self.min_headroom_s) or self.min_headroom_s < 0:
            raise ConfigurationError(
                f"min_headroom_s must be finite and >= 0, "
                f"got {self.min_headroom_s!r}"
            )

    def decide(self, depth: int, deadline_s: float | None = None) -> str:
        """One arrival's rung: pure arithmetic over depth and headroom."""
        if depth >= self.reject_depth:
            return REJECT
        if deadline_s is not None:
            if deadline_s <= 0:
                return REJECT
            if deadline_s < self.min_headroom_s:
                return DEGRADE
        if depth >= self.degrade_depth:
            return DEGRADE
        return ADMIT


class AsyncAdmission:
    """The asyncio front door: bounded queue + ladder + engine hand-off.

    Parameters
    ----------
    engine:
        The (possibly sharded) serving engine behind the door.
    policy:
        The backpressure ladder; defaults to :class:`AdmissionPolicy`'s
        defaults.
    queue_limit:
        Capacity of the front queue; :meth:`offer` blocks
        (asynchronously — that *is* the backpressure) when it is full.
        Defaults to the policy's ``reject_depth``.
    """

    def __init__(
        self,
        engine: "ServeEngine",
        policy: AdmissionPolicy | None = None,
        queue_limit: int | None = None,
    ) -> None:
        self.engine = engine
        self.policy = policy if policy is not None else AdmissionPolicy()
        if queue_limit is None:
            queue_limit = self.policy.reject_depth
        if queue_limit < 1:
            raise ConfigurationError(f"queue_limit must be >= 1, got {queue_limit}")
        self.queue_limit = queue_limit
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self.decisions: dict[str, int] = {decision: 0 for decision in DECISIONS}

    @property
    def depth(self) -> int:
        """Combined pending depth: front queue plus engine queue."""
        return self._queue.qsize() + self.engine.queue_depth

    async def offer(
        self,
        request: QueryRequest,
        plans: PreprocessingPlan | Sequence[PreprocessingPlan],
    ) -> str:
        """Grade one arrival and enqueue (or reject) it; returns the rung.

        Blocks — asynchronously, never the event loop — while the front
        queue is full, which is how backpressure propagates to callers.
        """
        decision = self.policy.decide(self.depth, request.deadline_s)
        self.decisions[decision] += 1
        self.engine.obs.metrics.inc(f"serve.admission.{decision}")
        if decision == REJECT:
            self.engine.reject(request)
            return decision
        await self._queue.put((request, plans, decision))
        return decision

    async def pump(self) -> int:
        """Drain the front queue into the engine queue; returns the count.

        Sentinel-free drain of whatever is queued *now* — the
        producer/consumer pairing in :meth:`run` uses the sentinel
        protocol instead so it never busy-waits.
        """
        moved = 0
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if item is _DONE:
                continue
            request, plans, decision = item
            self.engine.submit(request, plans, cache_only=decision == DEGRADE)
            moved += 1
        return moved

    async def run(
        self,
        arrivals: Iterable[
            tuple[QueryRequest, PreprocessingPlan | Sequence[PreprocessingPlan]]
        ],
    ) -> ServeReport:
        """Push a whole arrival sequence through the door, then serve.

        A producer task offers each arrival (feeling backpressure when
        the front queue fills) while a consumer task drains admitted
        queries into the engine; once the arrivals are exhausted the
        engine's wave loop runs in an executor.
        """

        async def produce() -> None:
            for request, plans in arrivals:
                await self.offer(request, plans)
            await self._queue.put(_DONE)

        async def consume() -> None:
            while True:
                item = await self._queue.get()
                if item is _DONE:
                    return
                request, plans, decision = item
                self.engine.submit(request, plans, cache_only=decision == DEGRADE)

        await asyncio.gather(produce(), consume())
        return await self.serve()

    async def serve(self) -> ServeReport:
        """Drain stragglers and run the engine off the event loop."""
        await self.pump()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.engine.run)


def admit_and_serve(
    engine: "ServeEngine",
    arrivals: Iterable[
        tuple[QueryRequest, PreprocessingPlan | Sequence[PreprocessingPlan]]
    ],
    policy: AdmissionPolicy | None = None,
    queue_limit: int | None = None,
) -> tuple[ServeReport, dict[str, int]]:
    """Synchronous front-door serve: returns the report and decision tally.

    The CLI/bench entry point: builds an :class:`AsyncAdmission`, runs
    the producer/consumer/serve pipeline on a private event loop, and
    hands back ``(report, {"admit": n, "degrade": n, "reject": n})``.
    """
    admission = AsyncAdmission(engine, policy, queue_limit)
    report = asyncio.run(admission.run(arrivals))
    return report, dict(admission.decisions)
