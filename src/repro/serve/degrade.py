"""Deadline- and shortfall-aware graceful degradation for serving.

When the serving engine cannot deliver a query's full contract — the
deadline expired mid-evaluation, the budget could not fund a purchase
wave, or the crowd's retry budget lost answers — it refuses to shed the
query.  It returns whatever it *can* compute, annotated with a
:class:`DegradedResult`: widened confidence intervals, the per-term
answer shortfall, and an honest completeness/confidence figure.  This
is the posture of Selke et al.'s query-driven schema expansion (serve a
degraded answer now rather than fail) combined with Trushkowsky et
al.'s completeness estimation (report how much of the answer you
actually have).

The degradation ladder (DESIGN.md §13), in reason-precedence order:

``admission``
    The async admission layer shed the query *into* the cache: it was
    admitted cache-only (no purchase demand) under backpressure, so any
    term the warm cache cannot fully serve is short by decision, not by
    money or crowd behaviour (DESIGN.md §15).
``deadline``
    Evaluation was cut off; the evaluated prefix is returned.
``budget``
    A purchase wave could not be funded; estimates use fewer answers
    per term (possibly none — the term drops out of the formula).
``faults``
    Retries were exhausted on some answers; same estimator effect as
    ``budget``, but the money was available — the crowd was not.

Interval widening: a term ``c_a · mean(a)`` with ``n`` of ``m``
demanded answers contributes ``c_a² · s²_a / n`` to the estimate's
variance (population variance ``s²_a``; for ``n = 0`` a range-based
prior ``(span/4)²`` stands in).  The half-width is
``z · sqrt(Σ terms)`` inflated by ``sqrt(m_total / n_total)`` so a
half-served query honestly reports roughly ``sqrt(2)``-wider
intervals.  The inflation is a heuristic annotation, not a calibrated
coverage guarantee — it exists so downstream consumers can *rank*
degraded answers by trustworthiness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Normal z-score of the nominal two-sided 95% interval.
Z_CONFIDENCE = 1.96

#: Nominal coverage the intervals target at full evidence.
NOMINAL_CONFIDENCE = 0.95

#: Degradation reasons, in reporting-precedence order.
DEGRADE_REASONS = ("admission", "deadline", "budget", "faults")


@dataclass(frozen=True)
class TermShortfall:
    """One ``(object, attribute)`` term that got fewer answers than planned.

    ``effective`` (optional) is the Kish effective sample size of the
    served answers under reliability weighting — strictly less than
    ``served`` when weights are unequal, so a term served entirely by
    down-weighted workers is reported as thinner evidence than its raw
    answer count suggests.  ``None`` (uniform aggregation) keeps the
    historical serialized shape.
    """

    object_id: int
    attribute: str
    demanded: int
    served: int
    effective: float | None = None

    def to_dict(self) -> dict:
        payload = {
            "object_id": self.object_id,
            "attribute": self.attribute,
            "demanded": self.demanded,
            "served": self.served,
        }
        if self.effective is not None:
            payload["effective"] = self.effective
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TermShortfall":
        effective = payload.get("effective")
        return cls(
            object_id=int(payload["object_id"]),
            attribute=str(payload["attribute"]),
            demanded=int(payload["demanded"]),
            served=int(payload["served"]),
            effective=None if effective is None else float(effective),
        )


@dataclass
class DegradedResult:
    """The degradation annotation attached to a degraded query result.

    Attributes
    ----------
    reason:
        The primary degradation reason (first of :data:`DEGRADE_REASONS`
        that applies).
    reasons:
        Every reason that applied, in precedence order.
    completeness:
        Fraction of the query's contract that was delivered:
        ``(objects evaluated / objects requested) × (answers served /
        answers demanded over the evaluated objects)``.  1.0 means the
        only thing degraded was timing.
    confidence:
        Nominal interval coverage scaled by the evidence fraction —
        ``0.95`` at full evidence, lower when answers are missing.
    answers_demanded / answers_served:
        Answer counts over the evaluated objects.
    objects_requested / objects_evaluated:
        Object counts (differ only under ``deadline``).
    shortfalls:
        Per-term deficits, sorted by ``(object_id, attribute)``.
    intervals:
        ``target -> [[lo, hi], ...]`` aligned with the result's
        ``object_ids``: widened 95%-style intervals around each
        estimate.
    """

    reason: str
    reasons: tuple[str, ...]
    completeness: float
    confidence: float
    answers_demanded: int = 0
    answers_served: int = 0
    objects_requested: int = 0
    objects_evaluated: int = 0
    shortfalls: list[TermShortfall] = field(default_factory=list)
    intervals: dict[str, list[list[float]]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "reasons": list(self.reasons),
            "completeness": self.completeness,
            "confidence": self.confidence,
            "answers_demanded": self.answers_demanded,
            "answers_served": self.answers_served,
            "objects_requested": self.objects_requested,
            "objects_evaluated": self.objects_evaluated,
            "shortfalls": [shortfall.to_dict() for shortfall in self.shortfalls],
            "intervals": {
                target: [list(bounds) for bounds in rows]
                for target, rows in self.intervals.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DegradedResult":
        return cls(
            reason=str(payload["reason"]),
            reasons=tuple(str(reason) for reason in payload.get("reasons", ())),
            completeness=float(payload["completeness"]),
            confidence=float(payload["confidence"]),
            answers_demanded=int(payload.get("answers_demanded", 0)),
            answers_served=int(payload.get("answers_served", 0)),
            objects_requested=int(payload.get("objects_requested", 0)),
            objects_evaluated=int(payload.get("objects_evaluated", 0)),
            shortfalls=[
                TermShortfall.from_dict(entry)
                for entry in payload.get("shortfalls", [])
            ],
            intervals={
                str(target): [[float(bounds[0]), float(bounds[1])] for bounds in rows]
                for target, rows in payload.get("intervals", {}).items()
            },
        )


def order_reasons(reasons: set[str]) -> tuple[str, ...]:
    """Sort a reason set into :data:`DEGRADE_REASONS` precedence order."""
    return tuple(reason for reason in DEGRADE_REASONS if reason in reasons)


def population_variance(values) -> float:
    """Population (``ddof=0``) variance of a non-empty sample.

    Accepts any float sequence (list or ndarray); the left-fold sums
    keep the result byte-stable across both.
    """
    n = len(values)
    mean = sum(values) / n
    return sum((value - mean) ** 2 for value in values) / n


def widened_interval(
    estimate: float,
    terms: list,
) -> list[float]:
    """A shortfall-inflated 95%-style interval around one estimate.

    ``terms`` holds ``(coefficient, answers, demanded, prior_variance)``
    per formula term (``answers`` a float sequence — the cache now
    hands out ndarrays); ``prior_variance`` stands in for the sample
    variance of a term that got *zero* answers (a range-based bound),
    so empty terms widen the interval instead of silently vanishing
    from it.  A term may carry a fifth element — the Kish effective
    sample size of its answers under reliability weighting — which then
    replaces the raw answer count as the variance divisor: evidence
    concentrated on down-weighted workers honestly reports a wider
    interval than its answer count alone would suggest.
    """
    variance = 0.0
    demanded_total = 0
    served_total = 0
    for term in terms:
        coefficient, answers, demanded, prior_variance = term[:4]
        effective = term[4] if len(term) > 4 and term[4] is not None else None
        demanded_total += demanded
        served_total += len(answers)
        if not demanded:
            continue
        if len(answers):
            divisor = effective if effective and effective > 0 else len(answers)
            variance += coefficient**2 * population_variance(answers) / divisor
        else:
            variance += coefficient**2 * prior_variance
    half_width = Z_CONFIDENCE * math.sqrt(variance)
    if served_total < demanded_total and served_total > 0:
        half_width *= math.sqrt(demanded_total / served_total)
    return [estimate - half_width, estimate + half_width]


def evidence_confidence(answers_served: int, answers_demanded: int) -> float:
    """Nominal coverage scaled by the fraction of evidence present."""
    if answers_demanded <= 0:
        return NOMINAL_CONFIDENCE
    return NOMINAL_CONFIDENCE * (answers_served / answers_demanded)
