"""Online query serving: batched evaluation over a shared answer cache.

The offline pipeline answers one query at a time and buys every answer
it needs.  This package adds the serving layer on top: an
:class:`~repro.serve.engine.ServeEngine` that accepts a stream of
:class:`~repro.serve.report.QueryRequest` submissions, coalesces their
value questions across queries, buys only what the shared
:class:`~repro.serve.cache.AnswerCache` does not already hold, and
evaluates queries concurrently — deterministically, for any worker
count, thanks to pure per-key answer streams
(:mod:`repro.serve.stream`).  See DESIGN.md §12.

The resilience layer (DESIGN.md §13) makes the purchase path
fault-injectable (:mod:`repro.serve.faults`) and the results
deadline/budget/fault-aware (:mod:`repro.serve.degrade`): a query the
engine cannot fully serve comes back ``degraded`` with widened
intervals and an honest completeness figure, never silently dropped.

The scale-out layer (DESIGN.md §15) shards the cache and wave
execution across key-hashed partitions — optionally forked OS
processes — with byte-identical results at any shard count
(:mod:`repro.serve.shard`), and puts an asyncio admission ladder in
front of the engine queue (:mod:`repro.serve.admission`): admit,
degrade to cache-only, or reject by queue depth and deadline headroom.
"""

from repro.serve.admission import (
    DECISIONS,
    AdmissionPolicy,
    AsyncAdmission,
    admit_and_serve,
)
from repro.serve.cache import AnswerCache, CachedAnswerSource, CacheReadSource
from repro.serve.degrade import (
    DEGRADE_REASONS,
    DegradedResult,
    TermShortfall,
    evidence_confidence,
    widened_interval,
)
from repro.serve.engine import SERVE_CHECKPOINT, SERVE_JOURNAL, ServeEngine
from repro.serve.faults import KeyPurchase, ResilientValueStream
from repro.serve.load import LoadSpec, generate_workload, percentile, zipf_weights
from repro.serve.report import (
    SHED_REASONS,
    STATUSES,
    Predicate,
    QueryRequest,
    QueryResult,
    ServeReport,
    load_query_file,
    saving_percent,
)
from repro.serve.scheduler import BoundedScheduler
from repro.serve.shard import (
    ShardedAnswerCache,
    ShardRouter,
    shard_journal_name,
    stable_shard,
)
from repro.serve.stream import BatchedValueStream, DeterministicValueStream

__all__ = [
    "DECISIONS",
    "DEGRADE_REASONS",
    "SERVE_CHECKPOINT",
    "SERVE_JOURNAL",
    "SHED_REASONS",
    "STATUSES",
    "AdmissionPolicy",
    "AnswerCache",
    "AsyncAdmission",
    "BatchedValueStream",
    "BoundedScheduler",
    "CacheReadSource",
    "CachedAnswerSource",
    "DegradedResult",
    "DeterministicValueStream",
    "KeyPurchase",
    "LoadSpec",
    "Predicate",
    "QueryRequest",
    "QueryResult",
    "ResilientValueStream",
    "ServeEngine",
    "ServeReport",
    "ShardRouter",
    "ShardedAnswerCache",
    "TermShortfall",
    "admit_and_serve",
    "evidence_confidence",
    "generate_workload",
    "load_query_file",
    "percentile",
    "saving_percent",
    "shard_journal_name",
    "stable_shard",
    "widened_interval",
    "zipf_weights",
]
