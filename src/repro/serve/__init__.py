"""Online query serving: batched evaluation over a shared answer cache.

The offline pipeline answers one query at a time and buys every answer
it needs.  This package adds the serving layer on top: an
:class:`~repro.serve.engine.ServeEngine` that accepts a stream of
:class:`~repro.serve.report.QueryRequest` submissions, coalesces their
value questions across queries, buys only what the shared
:class:`~repro.serve.cache.AnswerCache` does not already hold, and
evaluates queries concurrently — deterministically, for any worker
count, thanks to pure per-key answer streams
(:mod:`repro.serve.stream`).  See DESIGN.md §12.

The resilience layer (DESIGN.md §13) makes the purchase path
fault-injectable (:mod:`repro.serve.faults`) and the results
deadline/budget/fault-aware (:mod:`repro.serve.degrade`): a query the
engine cannot fully serve comes back ``degraded`` with widened
intervals and an honest completeness figure, never silently dropped.
"""

from repro.serve.cache import AnswerCache, CachedAnswerSource, CacheReadSource
from repro.serve.degrade import (
    DEGRADE_REASONS,
    DegradedResult,
    TermShortfall,
    evidence_confidence,
    widened_interval,
)
from repro.serve.engine import SERVE_CHECKPOINT, SERVE_JOURNAL, ServeEngine
from repro.serve.faults import KeyPurchase, ResilientValueStream
from repro.serve.load import LoadSpec, generate_workload, percentile, zipf_weights
from repro.serve.report import (
    SHED_REASONS,
    STATUSES,
    Predicate,
    QueryRequest,
    QueryResult,
    ServeReport,
    load_query_file,
)
from repro.serve.scheduler import BoundedScheduler
from repro.serve.stream import BatchedValueStream, DeterministicValueStream

__all__ = [
    "DEGRADE_REASONS",
    "SERVE_CHECKPOINT",
    "SERVE_JOURNAL",
    "SHED_REASONS",
    "STATUSES",
    "AnswerCache",
    "BatchedValueStream",
    "BoundedScheduler",
    "CacheReadSource",
    "CachedAnswerSource",
    "DegradedResult",
    "DeterministicValueStream",
    "KeyPurchase",
    "LoadSpec",
    "Predicate",
    "QueryRequest",
    "QueryResult",
    "ResilientValueStream",
    "ServeEngine",
    "ServeReport",
    "TermShortfall",
    "evidence_confidence",
    "generate_workload",
    "load_query_file",
    "percentile",
    "widened_interval",
    "zipf_weights",
]
