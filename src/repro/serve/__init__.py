"""Online query serving: batched evaluation over a shared answer cache.

The offline pipeline answers one query at a time and buys every answer
it needs.  This package adds the serving layer on top: an
:class:`~repro.serve.engine.ServeEngine` that accepts a stream of
:class:`~repro.serve.report.QueryRequest` submissions, coalesces their
value questions across queries, buys only what the shared
:class:`~repro.serve.cache.AnswerCache` does not already hold, and
evaluates queries concurrently — deterministically, for any worker
count, thanks to pure per-key answer streams
(:mod:`repro.serve.stream`).  See DESIGN.md §12.
"""

from repro.serve.cache import AnswerCache, CachedAnswerSource, CacheReadSource
from repro.serve.engine import SERVE_CHECKPOINT, SERVE_JOURNAL, ServeEngine
from repro.serve.report import (
    Predicate,
    QueryRequest,
    QueryResult,
    ServeReport,
    load_query_file,
)
from repro.serve.scheduler import BoundedScheduler
from repro.serve.stream import DeterministicValueStream

__all__ = [
    "SERVE_CHECKPOINT",
    "SERVE_JOURNAL",
    "AnswerCache",
    "BoundedScheduler",
    "CacheReadSource",
    "CachedAnswerSource",
    "DeterministicValueStream",
    "Predicate",
    "QueryRequest",
    "QueryResult",
    "ServeEngine",
    "ServeReport",
    "load_query_file",
]
