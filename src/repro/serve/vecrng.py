"""Vectorized re-derivation of the per-coordinate answer generators.

The serving tier's determinism contract pins every answer to its own
``np.random.default_rng([seed, object, crc32(attr), index])`` — one
:class:`~numpy.random.Generator` per coordinate, so generation order,
batching and thread scheduling cannot change a single draw.  That
contract is also why the scalar hot path is slow: constructing a
``SeedSequence`` + ``PCG64`` + ``Generator`` per answer costs ~10µs,
dwarfing the worker math it feeds.

This module re-implements the *derivation chain* those constructions
perform — SeedSequence entropy mixing, PCG64 stream seeding, the
generator's bounded-integer / normal / exponential / uniform draws —
as ndarray kernels over a whole batch of coordinates at once.  The
scalar generators remain the source of truth: every kernel reproduces
numpy's output bit for bit on its accept path and reports a mask of
lanes it could not finish (ziggurat wedge/tail, Lemire rejection),
which the caller replays through a real per-coordinate ``Generator``.
Batched and scalar streams are therefore byte-identical by
construction, and the property suite (``tests/property/
test_batched_stream.py``) plus the bench identity gates enforce it.

Algorithms mirrored here (numpy 1.24+ / 2.x, ``PCG64`` XSL-RR):

* ``SeedSequence.mix_entropy`` / ``generate_state`` — the hash
  constants advance independently of the data, so the per-call
  constants are precomputed once and each mixing round becomes one
  vector op over the batch.
* ``pcg64_srandom_r`` — 128-bit LCG state kept as ``(hi, lo)`` uint64
  array pairs; the 128-bit multiply uses 32-bit limb products.
* ``Generator.integers(0, n)`` — Lemire 32-bit rejection sampling on
  the low half of one ``next64`` draw.
* ``Generator.standard_normal`` / ``.exponential`` — the 256-layer
  ziggurat accept path (tables in :mod:`repro.serve._ziggurat`);
  ~98% of lanes accept on the first draw.
* ``Generator.random`` / ``.uniform`` — 53-bit mantissa doubles.
"""

from __future__ import annotations

import numpy as np

from repro.serve._ziggurat import (
    EXP_KE,
    EXP_WE,
    NORMAL_KI,
    NORMAL_WI,
)

__all__ = [
    "CoordinateStreams",
    "lemire_integers",
    "ziggurat_normals",
    "ziggurat_exponentials",
    "uniform_doubles",
]

# SeedSequence mixing constants (numpy _seed_seq).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = np.uint64(0xCA01F9DD)
_MIX_MULT_R = np.uint64(0x4973F715)
_XSHIFT = np.uint64(16)
_POOL_SIZE = 4

_MASK32 = np.uint64(0xFFFFFFFF)
_U32_BOUND = 1 << 32

# PCG64 128-bit LCG multiplier, split into 64-bit halves.
_PCG_MULT_HI = np.uint64(2549297995355413924)
_PCG_MULT_LO = np.uint64(4865540595714422341)

# random() / uniform() mantissa scale: 2**-53.
_TO_DOUBLE = 1.0 / 9007199254740992.0


def _hash_consts(init: int, mult: int, count: int) -> np.ndarray:
    """``count + 1`` successive hash constants ``init * mult**j mod 2^32``.

    ``hashmix`` call ``j`` XORs with constant ``j`` and multiplies by
    constant ``j + 1``; the sequence never depends on the data being
    mixed, which is what makes the mixing rounds vectorizable.
    """
    out = np.empty(count + 1, dtype=np.uint64)
    value = init
    for j in range(count + 1):
        out[j] = value
        value = (value * mult) & 0xFFFFFFFF
    return out


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """SeedSequence ``mix``: combine two uint32 lanes (vector form)."""
    result = (((x * _MIX_MULT_L) & _MASK32) - ((y * _MIX_MULT_R) & _MASK32)) & _MASK32
    result ^= result >> _XSHIFT
    return result


class _HashMixer:
    """One vectorized ``hashmix`` stream with its precomputed constants."""

    def __init__(self, init: int, mult: int, calls: int) -> None:
        self._consts = _hash_consts(init, mult, calls)
        self._call = 0

    def __call__(self, value: np.ndarray) -> np.ndarray:
        mixed = value ^ self._consts[self._call]
        mixed = (mixed * self._consts[self._call + 1]) & _MASK32
        mixed ^= mixed >> _XSHIFT
        self._call += 1
        return mixed


def _mix_pools(entropy: np.ndarray) -> list[np.ndarray]:
    """``SeedSequence.mix_entropy`` across the batch.

    ``entropy`` is ``(n, k)`` uint64 with every element ``< 2**32`` —
    one uint32 entropy word per column, exactly what
    ``_coerce_to_uint32_array`` produces for a list of ints below
    ``2**32``.  Returns the four pool lanes, each shape ``(n,)``.
    """
    n, k = entropy.shape
    calls = _POOL_SIZE + _POOL_SIZE * (_POOL_SIZE - 1)
    calls += max(0, k - _POOL_SIZE) * _POOL_SIZE
    hashmix = _HashMixer(_INIT_A, _MULT_A, calls)
    zeros = np.zeros(n, dtype=np.uint64)

    pool = [
        hashmix(entropy[:, i] if i < k else zeros) for i in range(_POOL_SIZE)
    ]
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = _mix(pool[i_dst], hashmix(pool[i_src]))
    for i_src in range(_POOL_SIZE, k):
        for i_dst in range(_POOL_SIZE):
            pool[i_dst] = _mix(pool[i_dst], hashmix(entropy[:, i_src]))
    return pool


def _generate_state4(pool: list[np.ndarray]) -> list[np.ndarray]:
    """``SeedSequence.generate_state(4, uint64)`` across the batch.

    Eight uint32 output words, paired little-endian into four uint64
    words — the exact seed material ``PCG64`` consumes.
    """
    hashmix = _HashMixer(_INIT_B, _MULT_B, 8)
    words = [hashmix(pool[i % _POOL_SIZE]) for i in range(8)]
    return [
        words[2 * i] | (words[2 * i + 1] << np.uint64(32)) for i in range(4)
    ]


def _mulhi64(a: np.ndarray, b: np.uint64) -> np.ndarray:
    """High 64 bits of a 64x64→128 multiply, via 32-bit limbs."""
    a_lo = a & _MASK32
    a_hi = a >> np.uint64(32)
    b_lo = b & _MASK32
    b_hi = b >> np.uint64(32)
    cross = a_hi * b_lo + ((a_lo * b_lo) >> np.uint64(32))
    low_sum = a_lo * b_hi + (cross & _MASK32)
    return a_hi * b_hi + (cross >> np.uint64(32)) + (low_sum >> np.uint64(32))


class CoordinateStreams:
    """A batch of independent PCG64 streams, one per coordinate tuple.

    ``entropy`` is the ``(n, k)`` matrix whose row ``i`` is the integer
    list that would seed coordinate ``i``'s scalar generator, e.g.
    ``[seed, object_id, attr_key, index]`` (``k = 5`` with a trailing
    attempt column for the fault-injected stream).  Every element must
    be a non-negative integer below ``2**32`` so each contributes one
    entropy word; callers with out-of-range coordinates must use the
    scalar path (:meth:`supports` reports this).

    After construction, :meth:`next64` advances all ``n`` streams one
    step and returns their raw 64-bit outputs — the same sequence each
    scalar ``Generator``'s bit generator would produce.
    """

    def __init__(self, entropy: np.ndarray) -> None:
        if entropy.ndim != 2:
            raise ValueError("entropy must be a 2-D (n, words) matrix")
        entropy = np.ascontiguousarray(entropy, dtype=np.uint64)
        if entropy.size and int(entropy.max()) >= _U32_BOUND:
            raise ValueError("entropy words must fit in uint32")
        words = _generate_state4(_mix_pools(entropy))
        # pcg64_set_seed: initstate = words[0]<<64 | words[1],
        # initseq = words[2]<<64 | words[3]; inc = (initseq << 1) | 1.
        self._inc_hi = (words[2] << np.uint64(1)) | (words[3] >> np.uint64(63))
        self._inc_lo = (words[3] << np.uint64(1)) | np.uint64(1)
        # srandom: state = 0; step (-> inc); state += initstate; step.
        state_lo = self._inc_lo + words[1]
        carry = (state_lo < self._inc_lo).astype(np.uint64)
        state_hi = self._inc_hi + words[0] + carry
        self._hi = state_hi
        self._lo = state_lo
        self._step()

    @staticmethod
    def supports(entropy: np.ndarray) -> bool:
        """Whether every entropy word maps to one uint32 (the fast path)."""
        return bool(
            entropy.size == 0
            or (int(entropy.min()) >= 0 and int(entropy.max()) < _U32_BOUND)
        )

    def _step(self) -> None:
        """128-bit LCG step: ``state = state * MULT + inc``."""
        new_lo = self._lo * _PCG_MULT_LO
        new_hi = (
            self._hi * _PCG_MULT_LO
            + self._lo * _PCG_MULT_HI
            + _mulhi64(self._lo, _PCG_MULT_LO)
        )
        out_lo = new_lo + self._inc_lo
        carry = (out_lo < new_lo).astype(np.uint64)
        self._hi = new_hi + self._inc_hi + carry
        self._lo = out_lo

    def next64(self) -> np.ndarray:
        """One XSL-RR output per stream (advances every stream)."""
        self._step()
        rot = self._hi >> np.uint64(58)
        xored = self._hi ^ self._lo
        return (xored >> rot) | (xored << ((np.uint64(64) - rot) & np.uint64(63)))


def lemire_integers(draws: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """``Generator.integers(0, n)`` from one raw draw per lane.

    Returns ``(values, accepted)``.  The generator consumes the *low*
    32 bits of one 64-bit draw and multiplies by ``n``; lanes whose
    leftover falls below Lemire's threshold are rejected (the scalar
    path would redraw) and must be replayed by the caller.  ``n == 1``
    consumes nothing — callers skip the draw entirely.
    """
    if not 1 < n <= _U32_BOUND:
        raise ValueError("lemire_integers expects 1 < n <= 2**32")
    product = (draws & _MASK32) * np.uint64(n)
    values = (product >> np.uint64(32)).astype(np.int64)
    threshold = (_U32_BOUND - n) % n
    accepted = (product & _MASK32) >= np.uint64(threshold)
    return values, accepted


def ziggurat_normals(draws: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``Generator.standard_normal`` accept path from one draw per lane.

    Returns ``(values, accepted)``; rejected lanes hit the ziggurat
    wedge or tail and must be replayed scalar.
    """
    idx = (draws & np.uint64(0xFF)).astype(np.intp)
    rest = draws >> np.uint64(8)
    sign = (rest & np.uint64(1)).astype(bool)
    rabs = (rest >> np.uint64(1)) & np.uint64(0x000FFFFFFFFFFFFF)
    values = rabs.astype(np.float64) * NORMAL_WI[idx]
    np.negative(values, out=values, where=sign)
    accepted = rabs < NORMAL_KI[idx]
    return values, accepted


def ziggurat_exponentials(draws: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``Generator.standard_exponential`` accept path (ziggurat method)."""
    shifted = draws >> np.uint64(3)
    idx = (shifted & np.uint64(0xFF)).astype(np.intp)
    shifted = shifted >> np.uint64(8)
    values = shifted.astype(np.float64) * EXP_WE[idx]
    accepted = shifted < EXP_KE[idx]
    return values, accepted


def uniform_doubles(draws: np.ndarray) -> np.ndarray:
    """``Generator.random()`` from one draw per lane (never rejects)."""
    return (draws >> np.uint64(11)).astype(np.float64) * _TO_DOUBLE
