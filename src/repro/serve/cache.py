"""The shared answer cache and its evaluator-facing answer sources.

:class:`AnswerCache` stores purchased crowd value answers keyed by
``(object_id, attribute)`` with per-entry counts.  A query that needs
``b(a)`` answers for a key some earlier query already touched only buys
the shortfall ``max(0, b(a) - cached)`` — the reuse that crowd query
processors build their economics on (Trushkowsky et al.'s *Getting It
All from the Crowd*; Rekatsinas et al.'s *CrowdGather*).

Two :class:`~repro.core.online.AnswerSource` implementations ride on
the cache:

* :class:`CachedAnswerSource` — the full read-through source: serves
  cached prefixes, purchases shortfalls through the platform ledger
  (budget-checked) from a :class:`~repro.serve.stream.
  DeterministicValueStream`, and records cache-hit savings.  Safe for
  serial use and for the engine's purchase phase (a lock serializes
  the charge+journal+insert critical section).
* :class:`CacheReadSource` — the read-only source the engine hands to
  evaluators after a wave's purchases have landed: pure cache reads,
  no accounting, trivially thread-safe.

Durability: every freshly purchased answer can be journaled through
the existing write-ahead machinery (``journal.record_answer("value",
key, index, answer)`` — the same record shape the offline
:class:`~repro.crowd.recording.AnswerRecorder` writes), so
:func:`~repro.durability.journal.replay_journal` reconstructs the
cache exactly and a crashed serving run resumes without re-purchasing.
"""

from __future__ import annotations

import threading
from typing import Any, Protocol

import numpy as np

from repro.agg.base import UNATTRIBUTED
from repro.crowd.platform import CrowdPlatform
from repro.crowd.recording import AnswerRecorder
from repro.errors import ConfigurationError
from repro.serve.stream import DeterministicValueStream

#: Cache keys are the recorder's value-tape keys: (object_id, attribute).
CacheKey = tuple[int, str]

_EMPTY = np.empty(0, dtype=np.float64)
_EMPTY.setflags(write=False)

_NO_WORKERS = np.empty(0, dtype=np.int64)
_NO_WORKERS.setflags(write=False)


class SupportsAnswerReads(Protocol):
    """Anything answers can be read from: a flat cache or a sharded one."""

    def answers(self, object_id: int, attribute: str, n: int) -> np.ndarray: ...

    def workers(self, object_id: int, attribute: str, n: int) -> np.ndarray: ...


def _frozen(answers) -> np.ndarray:
    """A read-only float64 copy of one key's answer tape."""
    array = np.array(answers, dtype=np.float64)
    array.setflags(write=False)
    return array


def _frozen_workers(worker_ids) -> np.ndarray:
    """A read-only int64 copy of one key's worker-provenance tape."""
    array = np.array(worker_ids, dtype=np.int64)
    array.setflags(write=False)
    return array


class AnswerCache:
    """Purchased value answers keyed by ``(object_id, attribute)``.

    Append-only per key (answers are never evicted or reordered —
    eviction would break both replay determinism and the economics:
    a bought answer is an asset).  Tapes are stored as read-only
    float64 ndarrays so :meth:`answers` can hand out zero-copy views
    to the evaluators instead of building a list per fetch.  Tracks
    hit/miss counts for the serve report and serializes to JSON for
    checkpoints.
    """

    def __init__(self) -> None:
        self._answers: dict[CacheKey, np.ndarray] = {}
        #: Optional worker-provenance tape per key.  May be *shorter*
        #: than the answer tape (answers bought before attribution was
        #: enabled have no recorded worker); the missing suffix reads
        #: as ``UNATTRIBUTED``.  Mirrors the offline recorder's
        #: ``_value_workers`` semantics.
        self._workers: dict[CacheKey, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._answers)

    @property
    def total_answers(self) -> int:
        """Total purchased answers held across all keys."""
        return sum(len(answers) for answers in self._answers.values())

    def count(self, object_id: int, attribute: str) -> int:
        """How many answers are cached for one key."""
        return len(self._answers.get((object_id, attribute), ()))

    def answers(self, object_id: int, attribute: str, n: int) -> np.ndarray:
        """The first ``min(n, cached)`` answers of one key.

        A read-only view of the stored tape — tapes are append-only by
        replacement, so a view can never observe a mutation.
        """
        tape = self._answers.get((object_id, attribute))
        if tape is None:
            return _EMPTY
        return tape[:n]

    def shortfall(self, object_id: int, attribute: str, n: int) -> int:
        """Answers still to buy so the key can serve ``n``."""
        return max(0, n - self.count(object_id, attribute))

    def workers(self, object_id: int, attribute: str, n: int) -> np.ndarray:
        """Worker ids behind the first ``min(n, cached)`` answers.

        Aligned 1:1 with :meth:`answers` for the same ``n``; positions
        past the recorded provenance tape read as ``UNATTRIBUTED``.
        """
        count = min(len(self._answers.get((object_id, attribute), ())), n)
        if count <= 0:
            return _NO_WORKERS
        tape = self._workers.get((object_id, attribute), _NO_WORKERS)
        if len(tape) >= count:
            return tape[:count]
        padded = np.full(count, UNATTRIBUTED, dtype=np.int64)
        padded[: len(tape)] = tape
        padded.setflags(write=False)
        return padded

    def add(
        self, object_id: int, attribute: str, answers, worker_ids=None
    ) -> int:
        """Append freshly purchased answers; returns the start index.

        ``worker_ids`` (optional, aligned with ``answers``) records who
        produced each fresh answer; any attribution gap before ``start``
        is padded with ``UNATTRIBUTED`` so tapes stay index-aligned.
        """
        key = (object_id, attribute)
        fresh = np.asarray(answers, dtype=np.float64)
        existing = self._answers.get(key)
        if existing is None:
            start = 0
            tape = _frozen(fresh)
        else:
            start = len(existing)
            tape = np.concatenate([existing, fresh])
            tape.setflags(write=False)
        self._answers[key] = tape
        if worker_ids is not None:
            if len(worker_ids) != len(fresh):
                raise ConfigurationError(
                    f"{len(worker_ids)} worker ids for {len(fresh)} answers"
                )
            recorded = self._workers.get(key, _NO_WORKERS)
            if len(recorded) < start:
                pad = np.full(start - len(recorded), UNATTRIBUTED, dtype=np.int64)
                recorded = np.concatenate([recorded, pad])
            merged = np.concatenate(
                [recorded, np.asarray(worker_ids, dtype=np.int64)]
            )
            merged.setflags(write=False)
            self._workers[key] = merged
        return start

    def note_hits(self, count: int) -> None:
        self.hits += count

    def note_misses(self, count: int) -> None:
        self.misses += count

    # -- persistence -----------------------------------------------------

    def keys(self) -> list[CacheKey]:
        """Every cached key, in sorted order (shard-balance statistics)."""
        return sorted(self._answers)

    def snapshot(self) -> dict:
        """JSON-serialisable copy of every cached answer.

        Entries come out in sorted key order — not insertion order — so
        the snapshot's bytes depend only on cache *contents*.  A sharded
        engine's checkpoint is therefore identical to the unsharded
        engine's for the same served state, and a checkpoint written at
        one shard count restores cleanly at any other.
        """
        entries = []
        for (oid, attr), answers in sorted(self._answers.items()):
            entry = {"object": oid, "attribute": attr, "answers": answers.tolist()}
            workers = self._workers.get((oid, attr))
            # Written only when provenance exists, so attribution-free
            # caches keep the historical snapshot bytes.
            if workers is not None and len(workers):
                entry["workers"] = workers.tolist()
            entries.append(entry)
        return {
            "entries": entries,
            "hits": self.hits,
            "misses": self.misses,
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "AnswerCache":
        cache = cls()
        for entry in payload.get("entries", []):
            key = (int(entry["object"]), str(entry["attribute"]))
            cache._answers[key] = _frozen(entry["answers"])
            if entry.get("workers"):
                cache._workers[key] = _frozen_workers(entry["workers"])
        cache.hits = int(payload.get("hits", 0))
        cache.misses = int(payload.get("misses", 0))
        return cache

    @classmethod
    def from_recorder(cls, recorder: AnswerRecorder) -> "AnswerCache":
        """Rebuild a cache from a (journal-replayed) answer recorder.

        The journal's ``value`` records and the recorder's value tapes
        share the cache's key shape (including the optional worker
        tape), so a crashed serving run's journal replays straight into
        a warm cache with its provenance intact.
        """
        cache = cls()
        for entry in recorder.to_dict()["values"]:
            key = (int(entry["object"]), str(entry["attribute"]))
            cache._answers[key] = _frozen(entry["answers"])
            if entry.get("workers"):
                cache._workers[key] = _frozen_workers(entry["workers"])
        return cache


class CachedAnswerSource:
    """Read-through answer source: cached prefix + purchased shortfall.

    Parameters
    ----------
    platform:
        Charges shortfalls (budget-checked) and records savings.
    cache:
        The shared answer store; a fresh private one when omitted.
    stream:
        Deterministic answer generator; built over ``platform`` when
        omitted.
    journal:
        Optional write-ahead journal (duck-typed against
        :class:`~repro.durability.journal.Journal`); every purchased
        answer is journaled *before* it joins the cache.
    metrics:
        Optional metrics sink for the ``serve.cache.*`` counters.
    attribute_workers:
        When True, every fresh purchase also derives and stores the
        answering worker's id (journaled alongside the answer), so
        reliability aggregation can weigh the tape later.  Off by
        default: attribution-free runs keep historical journal and
        snapshot bytes.
    """

    def __init__(
        self,
        platform: CrowdPlatform,
        cache: AnswerCache | None = None,
        stream: DeterministicValueStream | None = None,
        journal: Any = None,
        metrics: Any = None,
        attribute_workers: bool = False,
    ) -> None:
        self.platform = platform
        self.cache = cache if cache is not None else AnswerCache()
        self.stream = (
            stream if stream is not None else DeterministicValueStream(platform)
        )
        self.journal = journal
        self.metrics = metrics
        self.attribute_workers = bool(attribute_workers)
        #: Serializes charge + journal + cache-insert so concurrent
        #: fetches cannot double-buy a key or tear the ledger.
        self._lock = threading.Lock()

    def fetch(self, object_id: int, attribute: str, n: int) -> np.ndarray:
        """Up to ``n`` answers: cached prefix plus purchased shortfall.

        Raises :class:`~repro.errors.BudgetExhaustedError` when the
        platform budget cannot cover the shortfall (nothing is bought
        or cached in that case).
        """
        if n <= 0:
            return _EMPTY
        with self._lock:
            cached = self.cache.count(object_id, attribute)
            hits = min(cached, n)
            shortfall = n - hits
            if shortfall:
                # Budget check happens inside charge_values, *before*
                # the charge; generation is pure and cannot fail.
                self.platform.charge_values(attribute, shortfall)
                fresh = self.stream.answers(object_id, attribute, cached, shortfall)
                worker_ids = None
                if self.attribute_workers:
                    worker_ids = self.stream.worker_ids(
                        object_id, attribute, cached, shortfall
                    )
                if self.journal is not None:
                    key = (object_id, attribute)
                    for offset, answer in enumerate(fresh):
                        # The worker kwarg only appears when provenance
                        # is on, so plain journal sinks (and the byte
                        # format) are untouched by default.
                        if worker_ids is not None:
                            self.journal.record_answer(
                                "value",
                                key,
                                cached + offset,
                                answer,
                                worker=worker_ids[offset],
                            )
                        else:
                            self.journal.record_answer(
                                "value", key, cached + offset, answer
                            )
                self.cache.add(object_id, attribute, fresh, worker_ids)
                self.cache.note_misses(shortfall)
            if hits:
                self.platform.record_value_savings(attribute, hits)
                self.cache.note_hits(hits)
            if self.metrics is not None:
                if hits:
                    self.metrics.inc("serve.cache.hits", hits)
                    self.metrics.inc("serve.answers.saved", hits)
                if shortfall:
                    self.metrics.inc("serve.cache.misses", shortfall)
                    self.metrics.inc("serve.answers.purchased", shortfall)
            return self.cache.answers(object_id, attribute, n)

    def fetch_attributed(
        self, object_id: int, attribute: str, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`fetch` plus the worker ids behind the returned span."""
        values = self.fetch(object_id, attribute, n)
        return values, self.cache.workers(object_id, attribute, len(values))


class CacheReadSource:
    """Read-only view of a cache for post-purchase query evaluation.

    Returns whatever prefix the cache holds (shorter than ``n`` only
    when a wave's purchases were cut short by budget exhaustion, in
    which case the estimate degrades the same way the offline online
    phase degrades: the term's mean is taken over fewer answers, or
    drops out entirely at zero).  No accounting happens here — the
    engine already attributed hits and purchases when it planned the
    wave — so concurrent evaluators can share one instance freely.
    """

    #: Contract flag for :meth:`OnlineEvaluator.estimate_objects`:
    #: fetches are pure reads (no accounting, no mutation) and never
    #: raise for ``n >= 0``, so the evaluator may reorder them freely
    #: and use the batched design-matrix path.
    side_effect_free = True

    def __init__(self, cache: SupportsAnswerReads) -> None:
        self.cache = cache

    def fetch(self, object_id: int, attribute: str, n: int) -> np.ndarray:
        if n < 0:
            raise ConfigurationError(f"cannot fetch {n} answers")
        return self.cache.answers(object_id, attribute, n)

    def fetch_attributed(
        self, object_id: int, attribute: str, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cached answers plus the worker ids behind them (pure reads)."""
        values = self.fetch(object_id, attribute, n)
        return values, self.cache.workers(object_id, attribute, len(values))
