"""Fault-injected answer purchasing for the serving engine.

The offline platform's resilience loop (:meth:`~repro.crowd.platform.
CrowdPlatform._resilient_ask`) is stateful: a shared injector RNG, a
mutable circuit breaker and a shared simulated clock, all advanced in
global question order.  The serving engine cannot use it — its
generation phase runs in parallel and must stay byte-identical across
worker counts.  :class:`ResilientValueStream` is the pure-function
replacement:

* Attempt ``a`` of answer ``i`` for ``(object, attribute)`` derives its
  own generator from ``(fault_seed, object, attribute, i, a)`` — fault
  outcome, retry jitter, worker redraws and the answer value itself all
  come from that generator, so the whole purchase is a pure function of
  its coordinates and the *frozen* quarantine set the engine snapshots
  serially at wave start.
* No shared state is touched.  Every attempt is logged into the
  returned :class:`KeyPurchase`; the engine replays those logs into the
  circuit breaker, ledger, simulated clock and metrics **serially, in
  sorted key order**, so all side effects stay canonical (DESIGN.md
  §13).

Fault semantics mirror the offline loop: timeouts burn the question
timeout and retry, abandons retry immediately, garbage produces a
detectably-malformed value that validation rejects (another retry).
An answer whose retry budget is exhausted is *lost* — the engine
serves the query anyway, degraded, with the shortfall reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.crowd.faults import (
    VALUE_MARGIN_SPANS,
    FaultKind,
    FaultProfile,
    FaultRates,
    RetryPolicy,
    corrupted_value,
    draw_outcome,
    plausible_value,
)
from repro.serve.stream import BatchedValueStream, DeterministicValueStream
from repro.serve.vecrng import uniform_doubles, ziggurat_exponentials


@dataclass(frozen=True)
class Attempt:
    """One worker interaction during a purchase (for breaker replay)."""

    worker_id: int
    fault: bool


@dataclass
class KeyPurchase:
    """Everything one key's fault-injected purchase produced.

    ``answers`` holds the validated values actually obtained (possibly
    fewer than requested — the difference is ``lost``); the remaining
    fields are the side-effect log the engine replays serially.
    """

    answers: list[float] = field(default_factory=list)
    #: Answers whose retry budget was exhausted (never obtained).
    lost: int = 0
    #: Every worker interaction, in attempt order.
    attempts: list[Attempt] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    abandons: int = 0
    garbage: int = 0
    #: Simulated seconds of latency, timeouts and backoff.
    sim_seconds: float = 0.0


class ResilientValueStream:
    """Pure fault-injected purchases over a deterministic value stream.

    Parameters
    ----------
    stream:
        The fault-free answer stream; supplies the domain, the worker
        population and canonical attribute resolution.
    profile:
        Fault configuration; only the ``"value"`` category applies
        (serving buys nothing else).
    policy:
        Retry budget, backoff and question timeout.
    seed:
        Fault-stream seed.  Must differ from the answer-stream seed
        (the engine decorrelates it) so fault rolls never correlate
        with answer noise.
    """

    def __init__(
        self,
        stream: DeterministicValueStream,
        profile: FaultProfile,
        policy: RetryPolicy,
        seed: int,
    ) -> None:
        self.stream = stream
        self.profile = profile
        self.policy = policy
        self.seed = int(seed)
        self._rates: FaultRates = profile.rates_for("value")
        # Attribute resolution is pure; memoize it per surface form the
        # same way DeterministicValueStream._resolve does, so a
        # purchase resolves each key once instead of per call.
        self._resolved: dict[str, tuple[str, int, float, float]] = {}

    def _resolve_key(self, attribute: str) -> tuple[str, int, float, float]:
        """``(canonical, attr_key, low, high)`` for one attribute, memoized."""
        cached = self._resolved.get(attribute)
        if cached is None:
            canonical, attr_key = self.stream.resolve(attribute)
            low, high = self.stream.domain.answer_range(canonical)
            cached = (canonical, attr_key, float(low), float(high))
            self._resolved[attribute] = cached
        return cached

    def _draw_worker(self, rng: np.random.Generator, blocked: frozenset[int]):
        """Sample a worker, redrawing around the frozen quarantine set.

        Mirrors :meth:`~repro.crowd.pool.WorkerPool.draw_avoiding`:
        after ``len(workers)`` blocked redraws the last draw is served
        anyway, so a fully-quarantined population degrades to normal
        service instead of deadlocking.
        """
        workers = self.stream.workers
        worker = workers[int(rng.integers(0, len(workers)))]
        if not blocked:
            return worker
        for _ in range(len(workers)):
            if worker.worker_id not in blocked:
                return worker
            worker = workers[int(rng.integers(0, len(workers)))]
        return worker

    def purchase(
        self,
        object_id: int,
        attribute: str,
        start: int,
        count: int,
        blocked: frozenset[int],
    ) -> KeyPurchase:
        """Buy answers ``start .. start+count`` of one key, with faults.

        Pure: the result depends only on ``(seed, object, attribute,
        index, attempt)`` coordinates and ``blocked`` — never on call
        order, thread scheduling or purchase batching.
        """
        canonical, attr_key, low, high = self._resolve_key(attribute)
        domain = self.stream.domain
        result = KeyPurchase()
        for index in range(start, start + count):
            obtained = False
            for attempt in range(self.policy.max_attempts):
                rng = np.random.default_rng(
                    [self.seed, int(object_id), attr_key, int(index), attempt]
                )
                if attempt:
                    result.retries += 1
                    result.sim_seconds += self.policy.delay(attempt - 1, rng)
                worker = self._draw_worker(rng, blocked)
                outcome = draw_outcome(self._rates, worker.fault_proneness, rng)
                result.sim_seconds += outcome.latency
                if outcome.kind is FaultKind.TIMEOUT:
                    result.timeouts += 1
                    result.sim_seconds += self.policy.question_timeout
                    result.attempts.append(Attempt(worker.worker_id, True))
                    continue
                if outcome.kind is FaultKind.ABANDON:
                    result.abandons += 1
                    result.attempts.append(Attempt(worker.worker_id, True))
                    continue
                answer = worker.answer_value_stateless(
                    domain, object_id, canonical, rng
                )
                if outcome.kind is FaultKind.GARBAGE:
                    answer = corrupted_value((low, high), rng)
                    result.garbage += 1
                if plausible_value(answer, low, high):
                    result.attempts.append(Attempt(worker.worker_id, False))
                    result.answers.append(float(answer))
                    obtained = True
                    break
                result.attempts.append(Attempt(worker.worker_id, True))
            if not obtained:
                result.lost += 1
        return result

    def purchase_batch(
        self,
        requests: Sequence[tuple[int, str, int, int]],
        blocked: frozenset[int],
    ) -> list[KeyPurchase]:
        """Batched :meth:`purchase` over many keys.

        The common case under realistic fault rates is that every
        answer succeeds on its first attempt, so the batch computes all
        first attempts vectorized — worker draw, latency, fault roll,
        answer value and plausibility check as array ops over every
        lane at once — and falls back to the scalar :meth:`purchase`
        only for keys where *any* lane deviates from that fast path:
        an actual fault, a quarantined-worker redraw, a kernel
        rejection (Lemire / ziggurat) or a worker type without a
        vectorized contract.  Results are byte-identical to calling
        :meth:`purchase` per key.
        """
        if not requests:
            return []
        stream = self.stream

        def scalar() -> list[KeyPurchase]:
            return [
                self.purchase(obj, attr, start, count, blocked)
                for obj, attr, start, count in requests
            ]

        if not isinstance(stream, BatchedValueStream):
            return scalar()
        if not sum(count for _, _, _, count in requests):
            return [KeyPurchase() for _ in requests]
        metas = [stream.key_meta(obj, attr) for obj, attr, _, _ in requests]
        lanes = stream.batch_lanes(requests, metas, self.seed, attempt_column=True)
        if lanes is None:
            return scalar()
        counts, index_lane, tape, widx, ok = lanes
        total = int(counts.sum())

        worker_ids, proneness = stream.fault_columns()
        wid_lane = worker_ids[widx]
        if blocked:
            # Any quarantined-worker hit redraws in the scalar path;
            # send the whole key there.
            ok &= ~np.isin(wid_lane, np.fromiter(blocked, dtype=np.int64))

        rates = self._rates
        prone_lane = proneness[widx]
        if rates.latency_mean > 0:
            exps, exp_ok = ziggurat_exponentials(tape.next64())
            ok &= exp_ok
            latency = rates.latency_mean * exps
        else:
            latency = np.zeros(total, dtype=np.float64)

        roll = uniform_doubles(tape.next64())
        p_timeout = np.minimum(rates.timeout * prone_lane, 1.0)
        p_abandon = np.minimum(rates.abandon * prone_lane, 1.0)
        p_garbage = np.minimum(rates.garbage * prone_lane, 1.0)
        threshold = p_timeout + p_abandon
        threshold = threshold + p_garbage
        ok &= roll >= threshold  # any fault kind → scalar replay

        values, math_ok = stream._worker_math(metas, counts, widx, tape.next64())
        ok &= math_ok

        low = np.repeat(
            np.array([meta.low for meta in metas], dtype=np.float64), counts
        )
        high = np.repeat(
            np.array([meta.high for meta in metas], dtype=np.float64), counts
        )
        margin = VALUE_MARGIN_SPANS * np.maximum(high - low, 1.0)
        ok &= np.isfinite(values)
        ok &= values >= low - margin
        ok &= values <= high + margin

        bounds = np.cumsum(counts)
        seg_starts = bounds - counts
        results: list[KeyPurchase] = []
        for i, (obj, attr, start, count) in enumerate(requests):
            begin, end = int(seg_starts[i]), int(bounds[i])
            if count and not ok[begin:end].all():
                results.append(self.purchase(obj, attr, start, count, blocked))
                continue
            purchase = KeyPurchase()
            purchase.answers = values[begin:end].tolist()
            purchase.attempts = [
                Attempt(int(worker_id), False)
                for worker_id in wid_lane[begin:end].tolist()
            ]
            # Left-fold like the scalar `+=` per attempt (not np.sum,
            # whose pairwise order would change low bits).
            sim_seconds = 0.0
            for lane_latency in latency[begin:end].tolist():
                sim_seconds += lane_latency
            purchase.sim_seconds = sim_seconds
            results.append(purchase)
        return results
