"""Database substrate: data tables, query parsing, answer persistence.

The paper's setting is a data table ``D_{O x A}`` whose query-relevant
attribute values are missing and must be learned from the crowd.  This
subpackage provides that table (:mod:`repro.data.table`), a mini-SQL
parser extracting the query attribute set ``A(Q)``
(:mod:`repro.data.query`), and JSON persistence for recorded crowd
answers (:mod:`repro.data.store`).
"""

from repro.data.table import DataTable
from repro.data.query import ParsedQuery, parse_query
from repro.data.store import load_recorder, save_recorder

__all__ = [
    "DataTable",
    "ParsedQuery",
    "load_recorder",
    "parse_query",
    "save_recorder",
]
