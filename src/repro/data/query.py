"""Mini-SQL query parsing.

The paper treats a query ``Q`` as, w.l.o.g., an SQL query, and defines
``A(Q)`` as the set of attribute names appearing in it — both in the
SELECT list and in WHERE predicates.  The running example is::

    select number_of_calories, protein_amount from CC where dessert = true

with ``A(Q) = {dessert, number_of_calories, protein_amount}``.

We parse exactly this fragment: a SELECT list of attribute names, a
table name, and an optional WHERE clause of ``attr OP literal``
conjunctions with ``OP`` in ``=, <, <=, >, >=`` and numeric or boolean
literals.  Predicates become inclusive value ranges usable by
:meth:`repro.data.table.DataTable.select`.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.errors import QueryError

_QUERY_RE = re.compile(
    r"^\s*select\s+(?P<select>.+?)\s+from\s+(?P<table>\w+)"
    r"(?:\s+where\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_PREDICATE_RE = re.compile(
    r"^\s*(?P<attr>\w+)\s*(?P<op><=|>=|=|<|>)\s*(?P<value>\S+)\s*$"
)
_BOOL_LITERALS = {"true": 1.0, "false": 0.0}


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed SELECT query.

    Attributes
    ----------
    select:
        Attribute names in the SELECT list, in order.
    table:
        Queried table name.
    predicates:
        WHERE predicates as inclusive ``attr -> (low, high)`` ranges.
    """

    select: tuple[str, ...]
    table: str
    predicates: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def attributes(self) -> frozenset[str]:
        """The paper's ``A(Q)``: every attribute mentioned anywhere."""
        return frozenset(self.select) | frozenset(self.predicates)


def _parse_literal(token: str) -> float:
    lowered = token.lower().strip("'\"")
    if lowered in _BOOL_LITERALS:
        return _BOOL_LITERALS[lowered]
    try:
        return float(lowered)
    except ValueError as exc:
        raise QueryError(f"cannot parse literal {token!r}") from exc


def _predicate_range(op: str, value: float) -> tuple[float, float]:
    if op == "=":
        return (value, value)
    if op in ("<", "<="):
        return (-math.inf, value)
    return (value, math.inf)


def parse_query(text: str) -> ParsedQuery:
    """Parse a mini-SQL SELECT statement into a :class:`ParsedQuery`.

    Raises :class:`~repro.errors.QueryError` on anything outside the
    supported fragment (joins, OR, nested queries, ...).
    """
    match = _QUERY_RE.match(text)
    if match is None:
        raise QueryError(f"not a supported SELECT query: {text!r}")

    select_items = [item.strip() for item in match.group("select").split(",")]
    if any(not re.fullmatch(r"\w+|\*", item) for item in select_items):
        raise QueryError(f"unsupported SELECT list: {match.group('select')!r}")
    select = tuple(item for item in select_items if item != "*")
    if len(set(select)) != len(select):
        raise QueryError("duplicate attribute in SELECT list")

    predicates: dict[str, tuple[float, float]] = {}
    where = match.group("where")
    if where:
        if re.search(r"\bor\b", where, re.IGNORECASE):
            raise QueryError("OR predicates are not supported")
        for clause in re.split(r"\band\b", where, flags=re.IGNORECASE):
            predicate = _PREDICATE_RE.match(clause)
            if predicate is None:
                raise QueryError(f"cannot parse predicate {clause.strip()!r}")
            attribute = predicate.group("attr")
            low, high = _predicate_range(
                predicate.group("op"), _parse_literal(predicate.group("value"))
            )
            if attribute in predicates:
                old_low, old_high = predicates[attribute]
                low, high = max(low, old_low), min(high, old_high)
            predicates[attribute] = (low, high)

    if not select and not predicates:
        raise QueryError("query mentions no attributes")
    return ParsedQuery(select=select, table=match.group("table"), predicates=predicates)
