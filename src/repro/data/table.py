"""The data table ``D_{O x A}``.

A :class:`DataTable` holds rows for objects and columns for attributes,
with missing values allowed — the paper's queries are precisely about
attributes whose column is absent or empty.  The online query phase
fills estimated columns (``o.a^(*)``) next to whatever ground truth is
available, and the error metrics compare the two.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError


class DataTable:
    """In-memory object/attribute table with missing values.

    Parameters
    ----------
    object_ids:
        Row identifiers, in row order.
    columns:
        Optional initial columns: attribute name -> sequence of values
        aligned with ``object_ids`` (``None``/NaN marks missing).
    """

    def __init__(
        self,
        object_ids: Sequence[int],
        columns: dict[str, Sequence[float | None]] | None = None,
    ) -> None:
        if len(set(object_ids)) != len(object_ids):
            raise ConfigurationError("object ids must be unique")
        self._object_ids = list(object_ids)
        self._row_of = {oid: row for row, oid in enumerate(self._object_ids)}
        self._columns: dict[str, np.ndarray] = {}
        for name, values in (columns or {}).items():
            self.set_column(name, values)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def object_ids(self) -> tuple[int, ...]:
        """Row identifiers in row order."""
        return tuple(self._object_ids)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Column names, in insertion order."""
        return tuple(self._columns)

    def __len__(self) -> int:
        return len(self._object_ids)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._columns

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------

    @staticmethod
    def _to_array(values: Sequence[float | None], length: int) -> np.ndarray:
        if len(values) != length:
            raise ConfigurationError(
                f"column has {len(values)} values for {length} rows"
            )
        return np.array(
            [math.nan if v is None else float(v) for v in values], dtype=float
        )

    def set_column(self, attribute: str, values: Sequence[float | None]) -> None:
        """Create or replace a full column."""
        self._columns[attribute] = self._to_array(values, len(self._object_ids))

    def column(self, attribute: str) -> np.ndarray:
        """Copy of one column (NaN marks missing)."""
        if attribute not in self._columns:
            raise ConfigurationError(f"no such column: {attribute!r}")
        return self._columns[attribute].copy()

    def get(self, object_id: int, attribute: str) -> float:
        """One cell (NaN if missing)."""
        if attribute not in self._columns:
            return math.nan
        return float(self._columns[attribute][self._row_of[object_id]])

    def set(self, object_id: int, attribute: str, value: float) -> None:
        """Write one cell, creating the column on first use."""
        if attribute not in self._columns:
            self._columns[attribute] = np.full(len(self._object_ids), math.nan)
        self._columns[attribute][self._row_of[object_id]] = float(value)

    def has_value(self, object_id: int, attribute: str) -> bool:
        """True if the cell holds a real (non-missing) value."""
        return not math.isnan(self.get(object_id, attribute))

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------

    def missing_count(self, attribute: str) -> int:
        """Number of missing cells in a column (all rows if absent)."""
        if attribute not in self._columns:
            return len(self._object_ids)
        return int(np.isnan(self._columns[attribute]).sum())

    def select(
        self, attributes: Iterable[str], where: dict[str, tuple[float, float]] | None = None
    ) -> "DataTable":
        """Project onto ``attributes``, optionally filtering rows.

        ``where`` maps attribute names to inclusive ``(low, high)``
        ranges; rows whose value is missing or outside any range are
        dropped.  This is the evaluation step for the simple numeric
        predicates of the paper's example queries.
        """
        attributes = list(attributes)
        keep: list[int] = []
        for row, oid in enumerate(self._object_ids):
            ok = True
            for attribute, (low, high) in (where or {}).items():
                value = self.get(oid, attribute)
                if math.isnan(value) or not low <= value <= high:
                    ok = False
                    break
            if ok:
                keep.append(row)
        result = DataTable([self._object_ids[row] for row in keep])
        for attribute in attributes:
            if attribute in self._columns:
                column = self._columns[attribute]
                result.set_column(attribute, [float(column[row]) for row in keep])
            else:
                result.set_column(attribute, [None] * len(keep))
        return result

    def to_rows(self) -> list[dict[str, float]]:
        """Materialise the table as a list of per-object dicts."""
        return [
            {
                "object_id": oid,
                **{
                    attribute: float(self._columns[attribute][row])
                    for attribute in self._columns
                },
            }
            for row, oid in enumerate(self._object_ids)
        ]

    def __repr__(self) -> str:
        return f"DataTable(rows={len(self)}, columns={len(self._columns)})"
