"""Persistence for recorded crowd answers.

The paper recorded all CrowdFlower answers in a database and replayed
them in later experiments.  :func:`save_recorder` / :func:`load_recorder`
provide the same durability for our
:class:`~repro.crowd.recording.AnswerRecorder`, as a single JSON file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.crowd.recording import AnswerRecorder

#: Format marker written to every store file.
FORMAT_VERSION = 1


def save_recorder(recorder: AnswerRecorder, path: str | Path) -> None:
    """Write a recorder snapshot as JSON to ``path`` (atomically)."""
    target = Path(path)
    payload = {"version": FORMAT_VERSION, "recorder": recorder.to_dict()}
    temp = target.with_suffix(target.suffix + ".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    temp.replace(target)


def load_recorder(path: str | Path) -> AnswerRecorder:
    """Load a recorder snapshot written by :func:`save_recorder`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported answer-store version: {version!r}")
    return AnswerRecorder.from_dict(payload["recorder"])
