"""Counters and gauges for crowd-pipeline runs.

A :class:`MetricsRegistry` is a flat map of dotted counter names
(``crowd.questions.value``, ``online.budget_skips`` …) to numeric
totals, plus a smaller map of gauges (last-write-wins point-in-time
values such as the final plan size).  Registries are cheap value
objects: they serialize to plain dicts (:meth:`MetricsRegistry.to_dict`)
so parallel experiment workers can ship their counts back to the parent
process, and :meth:`MetricsRegistry.merge` folds such payloads together
— counters add, gauges take the later write.

The disabled path is :data:`NULL_METRICS`, a :class:`NullMetrics`
singleton whose methods do nothing.  Hot paths that would pay even for
a no-op call (the allocator's grant loop, the platform's per-answer
path) are instrumented with an optional *sink* instead: they hold
``metrics=None`` by default and only ever execute a ``None`` check, so
disabled runs stay byte-identical and effectively free.

Naming convention (all counters unless noted):

=============================  =========================================
``crowd.questions.<cat>``      paid answers per ledger category
``crowd.spend.<cat>``          cents spent per ledger category
``crowd.retries.<cat>``        retried (unpaid) attempts
``crowd.abandons.<cat>``       abandoned (unpaid) assignments
``crowd.faults.<kind>``        fault outcomes drawn by the injector
``crowd.spam.rejected``        answers dropped by the spam filter
``crowd.quarantine.trips``     circuit-breaker OPEN transitions
``allocator.calls``            greedy budget allocations performed
``allocator.grants``           single-question grants across all calls
``online.objects``             database objects estimated
``online.budget_skips``        online terms lost to budget exhaustion
``online.fault_skips``         online terms lost to crowd faults
``agg.missing_terms``          formula terms evaluated with no answers
``agg.workers`` (gauge)        workers the reliability model observed
``agg.gain`` (gauge)           mean per-attribute allocator ESS gain
``catalog.hits``               catalog lookups served from a fresh entry
``catalog.misses``             lookups with no entry on disk
``catalog.stale_age``          entries refused for exceeding max age
``catalog.stale_drift``        entries refused for domain-stats drift
``catalog.stores``             entries written (first store of a key)
``catalog.refreshes``          entries re-planned and overwritten
``catalog.avoided_cents``      preprocessing spend hits did not re-pay
``catalog.route.<route>``      router decisions (hit/refresh/fresh)
``catalog.entries`` (gauge)    entry files in the catalog directory
``plan.degradations``          graceful-degradation events
``runs.completed``             experiment runs that produced an error
``runs.infeasible``            runs skipped as infeasible (PlanningError)
``plan.attributes`` (gauge)    attribute count of the last plan
``plan.questions`` (gauge)     online questions/object of the last plan
=============================  =========================================
"""

from __future__ import annotations

import threading

from repro.errors import ConfigurationError


class MetricsRegistry:
    """A mutable registry of named counters and gauges.

    Writes are guarded by a lock: the serving engine's parallel
    evaluation phase increments counters from worker threads, and an
    unguarded read-modify-write would lose updates under contention.
    """

    __slots__ = ("_counters", "_gauges", "_lock")

    #: Real registries record; the null registry advertises False so
    #: callers can skip work that only feeds metrics.
    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to the counter ``name``."""
        if value < 0:
            raise ConfigurationError(
                f"counter {name!r} cannot be decremented (value={value!r})"
            )
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    # -- reading ---------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of one counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> dict[str, float]:
        """All counters whose name starts with ``prefix``, sorted."""
        return {
            name: self._counters[name]
            for name in sorted(self._counters)
            if name.startswith(prefix)
        }

    def by_suffix(self, prefix: str) -> dict[str, float]:
        """Counters under ``prefix.``, keyed by the remaining suffix.

        ``by_suffix("crowd.spend")`` returns ``{"value": …, …}`` — the
        shape the manifest's per-category tables want.
        """
        stem = prefix if prefix.endswith(".") else prefix + "."
        return {
            name[len(stem):]: value
            for name, value in sorted(self._counters.items())
            if name.startswith(stem)
        }

    def gauges(self) -> dict[str, float]:
        """All gauges, sorted by name."""
        return {name: self._gauges[name] for name in sorted(self._gauges)}

    # -- serialization and merging --------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (the parallel-worker payload)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            # Preserve int-ness: integer counters must merge to exact
            # integers so parallel runs match serial runs bit-for-bit.
            registry._counters[str(name)] = value if isinstance(value, int) else float(value)
        for name, value in payload.get("gauges", {}).items():
            registry._gauges[str(name)] = value if isinstance(value, int) else float(value)
        return registry

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Fold another registry (or its payload) into this one.

        Counters add; gauges take the incoming value (last write wins),
        matching what the same events recorded locally would have done.
        """
        if isinstance(other, dict):
            other = MetricsRegistry.from_dict(other)
        with self._lock:
            for name, value in other._counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in other._gauges.items():
                self._gauges[name] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)})"
        )


class NullMetrics:
    """The disabled registry: every method is a no-op.

    Reads behave like an empty registry so report builders need no
    special-casing.
    """

    __slots__ = ()

    enabled = False

    def inc(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> float:
        return 0

    def counters(self, prefix: str = "") -> dict[str, float]:
        return {}

    def by_suffix(self, prefix: str) -> dict[str, float]:
        return {}

    def gauges(self) -> dict[str, float]:
        return {}

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}}

    def merge(self, other) -> None:
        pass


#: Shared no-op registry (safe: it holds no state at all).
NULL_METRICS = NullMetrics()
