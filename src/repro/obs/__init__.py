"""Observability: tracing, metrics, and run manifests.

The pipeline's instrumentation rides on one small value object,
:class:`Observability`, bundling a :class:`~repro.obs.tracer.Tracer`
(nested phase spans + point events) and a
:class:`~repro.obs.metrics.MetricsRegistry` (counters/gauges).  Every
instrumented component — :class:`~repro.crowd.platform.CrowdPlatform`,
:class:`~repro.core.disq.DisQPlanner`,
:class:`~repro.core.online.OnlineEvaluator`, the experiment engine —
takes an optional ``obs`` and defaults to :data:`NULL_OBS`, whose
tracer and metrics are shared stateless no-ops: a run without
observability takes the identical code path it always did (enabling or
disabling observability never touches an RNG, an answer stream, or a
numeric result) and pays at most a few no-op calls per *batch*, never
per inner-loop step.

:mod:`repro.obs.manifest` turns a finished run's ``Observability`` into
a machine-readable **run manifest** (per-phase wall clock, spend
breakdown, resilience counts, plan summary) validated against a
self-contained schema — see ``python -m repro … --manifest PATH`` and
the ``BENCH_MANIFEST`` switch in :mod:`benchmarks.common`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer


@dataclass(frozen=True)
class Observability:
    """One run's tracer + metrics pair (possibly the shared no-ops)."""

    tracer: "Tracer | NullTracer"
    metrics: "MetricsRegistry | NullMetrics"

    @property
    def enabled(self) -> bool:
        """Whether anything is actually being recorded."""
        return self.tracer.enabled or self.metrics.enabled

    @property
    def metrics_sink(self) -> "MetricsRegistry | None":
        """The registry when recording, else ``None``.

        Hot paths (the cost ledger, the circuit breaker, the allocator)
        hold this instead of the bundle so their disabled cost is one
        ``is None`` check.
        """
        return self.metrics if self.metrics.enabled else None

    @classmethod
    def collecting(cls) -> "Observability":
        """A fresh recording bundle (new tracer, new registry)."""
        return cls(tracer=Tracer(), metrics=MetricsRegistry())

    @classmethod
    def disabled(cls) -> "Observability":
        """The shared no-op bundle."""
        return NULL_OBS


#: The default for every instrumented component: records nothing.
NULL_OBS = Observability(tracer=NULL_TRACER, metrics=NULL_METRICS)

__all__ = [
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullMetrics",
    "NullTracer",
    "Observability",
    "Span",
    "Tracer",
]
