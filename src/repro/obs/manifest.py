"""Machine-readable run manifests for crowd-pipeline runs.

A manifest is one JSON document summarising what a run did: per-phase
wall clock (from the :class:`~repro.obs.tracer.Tracer`), spend and
question counts by category, resilience counts (retries, abandons,
faults, spam rejections, quarantine trips), allocator statistics, an
optional plan summary, and the raw counter/gauge dump — everything a
post-hoc "why did this run cost what it cost" question needs.

Single-source guarantee: the spend and resilience sections are derived
*exclusively* from the run's :class:`~repro.obs.metrics.MetricsRegistry`
(:func:`spend_from_metrics` / :func:`resilience_from_metrics`), and
those counters are incremented at the very same call sites that feed
:class:`~repro.crowd.pricing.CostLedger` and
:meth:`~repro.crowd.platform.CrowdPlatform.resilience_report` — the
ledger records forward to the registry, the fault injector counts into
it, the circuit breaker trips into it.  The manifest therefore cannot
disagree with the ledger or the resilience report (asserted by
``tests/integration/test_observability.py``).

Validation uses :func:`validate_manifest`, a deliberately small
JSON-Schema-subset checker (``type`` / ``properties`` / ``required`` /
``additionalProperties`` / ``items`` / ``enum``) so no external schema
library is needed; :data:`MANIFEST_SCHEMA` is the schema CI validates
uploaded manifests against.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.errors import ConfigurationError

#: Bumped whenever a field is added, renamed, or re-typed.
#: v2: serve section renamed ``partial`` -> ``degraded``, added
#: ``degraded_by_reason``, ``shed_by_reason`` and ``faults`` subsections
#: for the resilient serving tier.
#: v3: added the optional ``serve.shards`` (shard topology and cache
#: balance) and ``serve.admission`` (front-door decision tally)
#: subsections for the sharded serving tier with async admission.
#: v4: added ``online.missing_terms`` (formula terms the evaluator had
#: no answers for — previously dropped silently) and the optional
#: ``agg`` section (reliability-weighted aggregation: workers observed,
#: allocator gain, missing-term tally).
#: v5: added the optional ``catalog`` section (plan-catalog traffic:
#: hit/miss/staleness tallies, stores and refreshes, preprocessing
#: spend avoided by hits, routing decisions of the declarative query
#: front-end).
SCHEMA_VERSION = 5

_NUMBER_MAP = {"type": "object", "additionalProperties": {"type": "number"}}
_INTEGER_MAP = {"type": "object", "additionalProperties": {"type": "integer"}}

#: JSON-Schema (subset) describing a run manifest document.
MANIFEST_SCHEMA = {
    "type": "object",
    "required": [
        "schema_version",
        "label",
        "created_at",
        "phases",
        "spend",
        "resilience",
        "allocator",
        "counters",
        "gauges",
    ],
    "properties": {
        "schema_version": {"type": "integer"},
        "label": {"type": "string"},
        "created_at": {"type": "number"},
        "phases": _NUMBER_MAP,
        "spend": {
            "type": "object",
            "required": [
                "total_cents",
                "by_category",
                "questions_by_category",
            ],
            "properties": {
                "total_cents": {"type": "number"},
                "by_category": _NUMBER_MAP,
                "questions_by_category": _INTEGER_MAP,
            },
        },
        "resilience": {
            "type": "object",
            "required": [
                "retries_by_category",
                "abandons_by_category",
                "timeouts",
                "abandons",
                "garbage_answers",
                "spam_rejected",
                "quarantine_trips",
                "degradations",
            ],
            "properties": {
                "retries_by_category": _INTEGER_MAP,
                "abandons_by_category": _INTEGER_MAP,
                "timeouts": {"type": "integer"},
                "abandons": {"type": "integer"},
                "garbage_answers": {"type": "integer"},
                "spam_rejected": {"type": "integer"},
                "quarantine_trips": {"type": "integer"},
                "degradations": {"type": "integer"},
            },
        },
        "allocator": {
            "type": "object",
            "required": ["calls", "grants"],
            "properties": {
                "calls": {"type": "integer"},
                "grants": {"type": "integer"},
            },
        },
        "online": {
            "type": "object",
            "properties": {
                "objects": {"type": "integer"},
                "budget_skips": {"type": "integer"},
                "fault_skips": {"type": "integer"},
                "missing_terms": {"type": "integer"},
            },
        },
        "agg": {
            "type": "object",
            "required": ["workers_observed", "missing_terms"],
            "properties": {
                "workers_observed": {"type": "integer"},
                "observations": {"type": "number"},
                "gain": {"type": "number"},
                "missing_terms": {"type": "integer"},
            },
        },
        "plan": {
            "type": "object",
            "properties": {
                "targets": {"type": "array", "items": {"type": "string"}},
                "attributes": {"type": "array", "items": {"type": "string"}},
                "budget_counts": _INTEGER_MAP,
                "online_questions_per_object": {"type": "integer"},
                "dismantle_rounds": {"type": "integer"},
                "preprocessing_cost_cents": {"type": "number"},
                "degradations": {"type": "integer"},
            },
        },
        "durability": {
            "type": "object",
            "required": ["resumed", "journal_records"],
            "properties": {
                "resumed": {"type": "boolean"},
                "journal_records": {"type": "integer"},
                "resumed_from": {"type": "string"},
                "checkpoint": {"type": "string"},
            },
        },
        "serve": {
            "type": "object",
            "required": [
                "queries",
                "completed",
                "degraded",
                "shed",
                "cache_hits",
                "cache_misses",
                "answers_saved",
                "answers_purchased",
                "saved_cents",
            ],
            "properties": {
                "queries": {"type": "integer"},
                "completed": {"type": "integer"},
                "degraded": {"type": "integer"},
                "degraded_by_reason": _INTEGER_MAP,
                "shed": {"type": "integer"},
                "shed_by_reason": _INTEGER_MAP,
                "from_checkpoint": {"type": "integer"},
                "waves": {"type": "integer"},
                "coalesced_questions": {"type": "integer"},
                "budget_stops": {"type": "integer"},
                "cache_hits": {"type": "integer"},
                "cache_misses": {"type": "integer"},
                "answers_saved": {"type": "integer"},
                "answers_purchased": {"type": "integer"},
                "saved_cents": {"type": "number"},
                "peak_queue_depth": {"type": "integer"},
                "shards": {
                    "type": "object",
                    "required": ["count", "processes", "keys_by_shard"],
                    "properties": {
                        "count": {"type": "integer"},
                        "processes": {"type": "boolean"},
                        "keys_by_shard": {
                            "type": "array",
                            "items": {"type": "integer"},
                        },
                        "answers_by_shard": {
                            "type": "array",
                            "items": {"type": "integer"},
                        },
                    },
                },
                "admission": {
                    "type": "object",
                    "required": ["admitted", "degraded", "rejected"],
                    "properties": {
                        "admitted": {"type": "integer"},
                        "degraded": {"type": "integer"},
                        "rejected": {"type": "integer"},
                    },
                },
                "faults": {
                    "type": "object",
                    "required": [
                        "timeouts",
                        "abandons",
                        "garbage_answers",
                        "retries",
                        "answers_lost",
                    ],
                    "properties": {
                        "timeouts": {"type": "integer"},
                        "abandons": {"type": "integer"},
                        "garbage_answers": {"type": "integer"},
                        "retries": {"type": "integer"},
                        "answers_lost": {"type": "integer"},
                    },
                },
            },
        },
        "catalog": {
            "type": "object",
            "required": [
                "hits",
                "misses",
                "stale_age",
                "stale_drift",
                "stores",
                "refreshes",
                "avoided_cents",
                "entries",
            ],
            "properties": {
                "hits": {"type": "integer"},
                "misses": {"type": "integer"},
                "stale_age": {"type": "integer"},
                "stale_drift": {"type": "integer"},
                "stores": {"type": "integer"},
                "refreshes": {"type": "integer"},
                "avoided_cents": {"type": "number"},
                "entries": {"type": "integer"},
                "routes": _INTEGER_MAP,
            },
        },
        "counters": _NUMBER_MAP,
        "gauges": _NUMBER_MAP,
        "extra": {"type": "object"},
    },
}


def _int_map(values: dict) -> dict:
    return {str(key): int(value) for key, value in values.items()}


def spend_from_metrics(metrics) -> dict:
    """The manifest ``spend`` section, from ``crowd.*`` counters.

    By construction (the ledger forwards to the registry) these equal
    ``CostLedger.spent_by_category`` / ``questions_by_category``.
    """
    by_category = {
        str(key): float(value)
        for key, value in metrics.by_suffix("crowd.spend").items()
    }
    return {
        "total_cents": float(sum(by_category.values())),
        "by_category": by_category,
        "questions_by_category": _int_map(metrics.by_suffix("crowd.questions")),
    }


def resilience_from_metrics(metrics) -> dict:
    """The manifest ``resilience`` section, from ``crowd.*`` counters.

    The same counters back
    :meth:`~repro.crowd.platform.CrowdPlatform.resilience_report`, so
    this section and the report can never disagree.
    """
    return {
        "retries_by_category": _int_map(metrics.by_suffix("crowd.retries")),
        "abandons_by_category": _int_map(metrics.by_suffix("crowd.abandons")),
        "timeouts": int(metrics.counter("crowd.faults.timeout")),
        "abandons": int(metrics.counter("crowd.faults.abandon")),
        "garbage_answers": int(metrics.counter("crowd.faults.garbage")),
        "spam_rejected": int(metrics.counter("crowd.spam.rejected")),
        "quarantine_trips": int(metrics.counter("crowd.quarantine.trips")),
        "degradations": int(metrics.counter("plan.degradations")),
    }


def serve_from_metrics(metrics) -> dict | None:
    """The manifest ``serve`` section, from ``serve.*`` counters.

    Returns ``None`` for runs that never touched the serving engine
    (``serve.queries`` is 0), so offline-only manifests stay unchanged.
    The cache counters are incremented at the same call sites that feed
    the :class:`~repro.serve.report.ServeReport` and the ledger's
    savings, so the three views agree by construction.
    """
    queries = int(metrics.counter("serve.queries"))
    if queries == 0:
        return None
    gauges = metrics.gauges()
    section = {
        "queries": queries,
        "completed": int(metrics.counter("serve.completed")),
        "degraded": int(metrics.counter("serve.degraded")),
        "degraded_by_reason": _int_map(metrics.by_suffix("serve.degraded")),
        "shed": int(metrics.counter("serve.shed")),
        "shed_by_reason": _int_map(metrics.by_suffix("serve.shed")),
        "from_checkpoint": int(metrics.counter("serve.from_checkpoint")),
        "waves": int(metrics.counter("serve.waves")),
        "coalesced_questions": int(metrics.counter("serve.coalesced")),
        "budget_stops": int(metrics.counter("serve.budget_stops")),
        "cache_hits": int(metrics.counter("serve.cache.hits")),
        "cache_misses": int(metrics.counter("serve.cache.misses")),
        "answers_saved": int(metrics.counter("serve.answers.saved")),
        "answers_purchased": int(metrics.counter("serve.answers.purchased")),
        "saved_cents": float(metrics.counter("crowd.saved.value")),
        "peak_queue_depth": int(gauges.get("serve.peak_queue_depth", 0)),
        "faults": {
            "timeouts": int(metrics.counter("serve.faults.timeout")),
            "abandons": int(metrics.counter("serve.faults.abandon")),
            "garbage_answers": int(metrics.counter("serve.faults.garbage")),
            "retries": int(metrics.counter("serve.faults.retries")),
            "answers_lost": int(metrics.counter("serve.faults.lost")),
        },
    }
    shard_count = int(gauges.get("serve.shards.count", 0))
    if shard_count:
        section["shards"] = {
            "count": shard_count,
            "processes": bool(gauges.get("serve.shards.processes", 0)),
            "keys_by_shard": [
                int(gauges.get(f"serve.shards.keys.{shard}", 0))
                for shard in range(shard_count)
            ],
            "answers_by_shard": [
                int(gauges.get(f"serve.shards.answers.{shard}", 0))
                for shard in range(shard_count)
            ],
        }
    admission = {
        "admitted": int(metrics.counter("serve.admission.admit")),
        "degraded": int(metrics.counter("serve.admission.degrade")),
        "rejected": int(metrics.counter("serve.admission.reject")),
    }
    if any(admission.values()):
        section["admission"] = admission
    return section


def agg_from_metrics(metrics) -> dict | None:
    """The manifest ``agg`` section, from ``agg.*`` metrics.

    Returns ``None`` for runs that never exercised non-uniform
    aggregation and never dropped a formula term (the common case), so
    historical manifests keep their exact shape.  ``gain`` is the mean
    per-attribute allocator gain the reliability model granted;
    ``missing_terms`` mirrors ``online.missing_terms``.
    """
    gauges = metrics.gauges()
    workers = int(gauges.get("agg.workers", 0))
    missing = int(metrics.counter("agg.missing_terms"))
    if not workers and not missing and "agg.gain" not in gauges:
        return None
    section = {"workers_observed": workers, "missing_terms": missing}
    if "agg.gain" in gauges:
        section["gain"] = float(gauges["agg.gain"])
    return section


def catalog_from_metrics(metrics) -> dict | None:
    """The manifest ``catalog`` section, from ``catalog.*`` metrics.

    Returns ``None`` for runs that never opened a plan catalog (no
    ``catalog.*`` counter ticked and no ``catalog.entries`` gauge set),
    so catalog-less manifests keep their exact historical shape.  The
    counters are incremented inside
    :class:`~repro.catalog.store.PlanCatalog` and
    :class:`~repro.catalog.query.PlanRouter` at the same sites that
    decide routing, so the manifest cannot disagree with the routes the
    run actually took; ``avoided_cents`` is the preprocessing spend a
    cold run would have re-paid (summed over hits from each entry's
    recorded cost).
    """
    gauges = metrics.gauges()
    section = {
        "hits": int(metrics.counter("catalog.hits")),
        "misses": int(metrics.counter("catalog.misses")),
        "stale_age": int(metrics.counter("catalog.stale_age")),
        "stale_drift": int(metrics.counter("catalog.stale_drift")),
        "stores": int(metrics.counter("catalog.stores")),
        "refreshes": int(metrics.counter("catalog.refreshes")),
        "avoided_cents": float(metrics.counter("catalog.avoided_cents")),
        "entries": int(gauges.get("catalog.entries", 0)),
    }
    routes = _int_map(metrics.by_suffix("catalog.route"))
    if not any(section.values()) and not routes and "catalog.entries" not in gauges:
        return None
    if routes:
        section["routes"] = routes
    return section


def plan_summary(plan) -> dict:
    """A JSON-friendly summary of a
    :class:`~repro.core.model.PreprocessingPlan`."""
    resilience = getattr(plan, "resilience", None)
    return {
        "targets": list(plan.query.targets),
        "attributes": list(plan.attributes),
        "budget_counts": _int_map(plan.budget.counts),
        "online_questions_per_object": int(plan.budget.total_questions),
        "dismantle_rounds": int(plan.dismantle_rounds),
        "preprocessing_cost_cents": float(plan.preprocessing_cost),
        "degradations": len(resilience.degradations) if resilience else 0,
    }


def build_manifest(
    label: str,
    obs,
    plan=None,
    extra: dict | None = None,
    created_at: float | None = None,
    durability: dict | None = None,
) -> dict:
    """Assemble a run manifest from an :class:`~repro.obs.Observability`.

    Parameters
    ----------
    label:
        Human-readable run identifier (bench name, CLI command line).
    obs:
        The run's observability bundle (tracer + metrics).  A disabled
        bundle yields a valid, mostly-empty manifest.
    plan:
        Optional :class:`~repro.core.model.PreprocessingPlan` to
        summarise.
    extra:
        Optional free-form section merged under ``"extra"`` (sweep
        grids, error tables, environment notes).
    created_at:
        Unix timestamp override (defaults to now); pin it in tests that
        compare manifests byte-for-byte.
    durability:
        Optional resume-provenance section, as produced by
        :func:`~repro.durability.recovery.durability_summary`.
    """
    metrics = obs.metrics
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "label": str(label),
        "created_at": float(time.time() if created_at is None else created_at),
        "phases": {
            path: round(seconds, 6)
            for path, seconds in obs.tracer.phase_seconds().items()
        },
        "spend": spend_from_metrics(metrics),
        "resilience": resilience_from_metrics(metrics),
        "allocator": {
            "calls": int(metrics.counter("allocator.calls")),
            "grants": int(metrics.counter("allocator.grants")),
        },
        "online": {
            "objects": int(metrics.counter("online.objects")),
            "budget_skips": int(metrics.counter("online.budget_skips")),
            "fault_skips": int(metrics.counter("online.fault_skips")),
            "missing_terms": int(metrics.counter("agg.missing_terms")),
        },
        "counters": metrics.counters(),
        "gauges": metrics.gauges(),
    }
    serve = serve_from_metrics(metrics)
    if serve is not None:
        manifest["serve"] = serve
    agg = agg_from_metrics(metrics)
    if agg is not None:
        manifest["agg"] = agg
    catalog = catalog_from_metrics(metrics)
    if catalog is not None:
        manifest["catalog"] = catalog
    if plan is not None:
        manifest["plan"] = plan_summary(plan)
    if extra is not None:
        manifest["extra"] = dict(extra)
    if durability is not None:
        manifest["durability"] = dict(durability)
    validate_manifest(manifest)
    return manifest


# ---------------------------------------------------------------------------
# Minimal JSON-Schema-subset validation (no external dependency)
# ---------------------------------------------------------------------------

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _validate(value, schema: dict, path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        if not _TYPE_CHECKS[expected](value):
            errors.append(
                f"{path or '$'}: expected {expected}, "
                f"got {type(value).__name__}"
            )
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path or '$'}: {value!r} not in {schema['enum']}")
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path or '$'}: missing required key {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties")
        for key, item in value.items():
            key_path = f"{path}.{key}" if path else key
            if key in properties:
                _validate(item, properties[key], key_path, errors)
            elif isinstance(additional, dict):
                _validate(item, additional, key_path, errors)
            elif additional is False:
                errors.append(f"{key_path}: unexpected key")
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{index}]", errors)


def manifest_errors(manifest: dict, schema: dict | None = None) -> list[str]:
    """All schema violations in ``manifest`` (empty = valid)."""
    errors: list[str] = []
    _validate(manifest, schema if schema is not None else MANIFEST_SCHEMA, "", errors)
    return errors


def validate_manifest(manifest: dict, schema: dict | None = None) -> dict:
    """Raise :class:`~repro.errors.ConfigurationError` if invalid."""
    errors = manifest_errors(manifest, schema)
    if errors:
        raise ConfigurationError(
            "invalid run manifest: " + "; ".join(errors[:5])
            + (f" (+{len(errors) - 5} more)" if len(errors) > 5 else "")
        )
    return manifest


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via write-temp-then-rename.

    A reader (or a crash) can only ever observe the old complete file or
    the new complete file, never a partial write.
    """
    temp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
    finally:
        temp.unlink(missing_ok=True)


def write_manifest(path: str | Path, manifest: dict) -> Path:
    """Validate and atomically write ``manifest`` as pretty JSON.

    The write goes through a same-directory temp file and
    ``os.replace`` so a crash mid-write never leaves a torn manifest
    where CI (or a resumed run) would read it.
    """
    validate_manifest(manifest)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write_text(
        target, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return target


def load_manifest(path: str | Path) -> dict:
    """Read and validate a manifest file."""
    manifest = json.loads(Path(path).read_text())
    return validate_manifest(manifest)
