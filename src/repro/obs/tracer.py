"""Nested phase spans and point events for crowd-pipeline runs.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
pipeline phase (``preprocess`` → ``examples`` / ``statistics`` /
``dismantle`` / ``allocate`` / ``train``, then ``online``) — plus flat
:class:`Event` records attached to whichever span was open when they
happened (per-question asks, budget truncations, fault retries …).

Spans time themselves on ``time.perf_counter``; timing is purely
observational, so enabling a tracer can never change experiment
results.  The disabled path is :data:`NULL_TRACER`, whose ``span``
returns a shared do-nothing context manager and whose ``event`` is a
no-op — near-zero-cost for instrumented call sites.

The manifest layer consumes :meth:`Tracer.phase_seconds`, which
flattens the span tree into ``{"preprocess": 1.2,
"preprocess/allocate": 0.3, …}`` wall-clock totals (repeated spans of
the same path accumulate).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class Event:
    """One point-in-time occurrence inside a span."""

    name: str
    at: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "at": self.at, "attrs": dict(self.attrs)}


@dataclass
class Span:
    """One timed phase, possibly containing child spans and events."""

    name: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    events: list[Event] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "attrs": dict(self.attrs),
            "events": [event.to_dict() for event in self.events],
            "children": [child.to_dict() for child in self.children],
        }


class _SpanContext:
    """Context manager closing one span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects a forest of nested spans with attached events."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._roots: list[Span] = []
        self._stack: list[Span] = []
        self._events_dropped = 0

    # -- recording -------------------------------------------------------

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a child span of the currently open span (or a root).

        Use as ``with tracer.span("allocate"): …``.
        """
        span = Span(name=name, start=self._clock(), attrs=attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ConfigurationError(
                f"span {span.name!r} closed out of order"
            )
        span.end = self._clock()
        self._stack.pop()

    def event(self, name: str, **attrs) -> None:
        """Record a point event on the innermost open span.

        Events outside any span are attached to a synthetic root span
        named ``<detached>`` so they are never silently lost.
        """
        record = Event(name=name, at=self._clock(), attrs=attrs)
        if self._stack:
            self._stack[-1].events.append(record)
            return
        if not self._roots or self._roots[-1].name != "<detached>":
            detached = Span(name="<detached>", start=record.at, end=record.at)
            self._roots.append(detached)
        self._roots[-1].events.append(record)

    # -- reading ---------------------------------------------------------

    @property
    def roots(self) -> tuple[Span, ...]:
        """Top-level spans recorded so far."""
        return tuple(self._roots)

    def phase_seconds(self) -> dict[str, float]:
        """Wall clock per span *path*, summed over repeated spans.

        Paths join nested span names with ``/``; open spans contribute
        nothing.  The ``<detached>`` event holder is skipped.
        """
        totals: dict[str, float] = {}

        def walk(span: Span, prefix: str) -> None:
            if span.name == "<detached>":
                return
            path = f"{prefix}/{span.name}" if prefix else span.name
            totals[path] = totals.get(path, 0.0) + span.seconds
            for child in span.children:
                walk(child, path)

        for root in self._roots:
            walk(root, "")
        return {path: totals[path] for path in sorted(totals)}

    def event_count(self, name: str | None = None) -> int:
        """Number of recorded events (optionally of one name)."""
        count = 0

        def walk(span: Span) -> None:
            nonlocal count
            for event in span.events:
                if name is None or event.name == name:
                    count += 1
            for child in span.children:
                walk(child)

        for root in self._roots:
            walk(root)
        return count

    def to_dict(self) -> dict:
        """JSON-serialisable dump of the whole span forest."""
        return {"spans": [root.to_dict() for root in self._roots]}


class _NullSpanContext:
    """Shared do-nothing span context for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """The disabled tracer: spans and events cost (almost) nothing."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpanContext:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    @property
    def roots(self) -> tuple:
        return ()

    def phase_seconds(self) -> dict[str, float]:
        return {}

    def event_count(self, name: str | None = None) -> int:
        return 0

    def to_dict(self) -> dict:
        return {"spans": []}


#: Shared no-op tracer (stateless, safe to share globally).
NULL_TRACER = NullTracer()
