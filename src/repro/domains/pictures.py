"""The Pictures domain (paper Section 5.1, Tables 4a and 5a).

The paper's objects are people known only through a photo, taken from
the public Photographic Height/Weight Chart; self-reported height and
weight (and the derived BMI) serve as ground truth, other targets use
averaged crowd estimates.  We rebuild the domain generatively:

* the correlation structure among the core attributes follows the
  published Table 5(a) (answer correlations, de-attenuated to
  true-value correlations is unnecessary at this calibration fidelity —
  worker noise shifts them only mildly and the paper's own numbers are
  sample estimates);
* the per-attribute worker-noise variances follow Table 5(a)'s ``S_c``
  column (BMI 30, Weight 189, binary attributes ~0.11-0.16);
* the dismantling taxonomy follows Table 4(a)'s answer frequencies;
* the gold-standard related-attribute sets for *Height* and *Weight*
  mirror the expert lists the paper borrowed from Sabato & Kalai.
"""

from __future__ import annotations

from repro.domains.calibration import correlation_from_pairs, extend_with_filler
from repro.domains.gaussian import GaussianDomain, GaussianDomainSpec
from repro.domains.taxonomy import DismantleTaxonomy

#: Attribute universe. The first block is the Table 5(a) core; the rest
#: are dismantling answers from Table 4(a) plus filler attributes that
#: irrelevant crowd answers can land on.
_NAMES: tuple[str, ...] = (
    "bmi",
    "weight",
    "height",
    "age",
    "heavy",
    "attractive",
    "works_out",
    "wrinkles",
    "shoe_size",
    "taller_than_you",
    "gray_hair",
    "old",
    "has_children",
    "good_facial_features",
    "fat",
    "has_good_style",
    "is_smiling",
    "wearing_glasses",
    "long_hair",
    "indoor_photo",
)

#: Themed filler attributes: the realistic long tail of unhelpful crowd
#: suggestions.  Weakly correlated with everything, so verification
#: rejects them; their diversity keeps Table 4's leaders on top.
_FILLER_NAMES: tuple[str, ...] = (
    'photo_background',
    'lighting_quality',
    'camera_angle',
    'is_outdoor_shot',
    'wearing_hat',
    'has_beard',
    'shirt_color_bright',
    'is_looking_at_camera',
    'photo_is_blurry',
    'has_tattoo',
    'standing_pose',
    'holding_object',
    'wall_visible',
    'multiple_people',
    'selfie_style',
    'black_and_white_photo',
)

_BINARY = {
    "heavy",
    "attractive",
    "works_out",
    "taller_than_you",
    "old",
    "has_children",
    "good_facial_features",
    "fat",
    "has_good_style",
    "is_smiling",
    "wearing_glasses",
    "long_hair",
    "indoor_photo",
}

_MEANS = {
    "bmi": 25.0,
    "weight": 75.0,
    "height": 170.0,
    "age": 40.0,
    "wrinkles": 0.35,
    "shoe_size": 41.0,
    "gray_hair": 0.25,
}

_SIGMAS = {
    "bmi": 5.5,
    "weight": 16.0,
    "height": 10.0,
    "age": 14.0,
    "wrinkles": 0.25,
    "shoe_size": 2.5,
    "gray_hair": 0.25,
}

#: Worker-noise variances.  Numeric attributes are hard to eyeball from
#: a photo (the paper's premise; a per-answer BMI standard deviation of
#: ~9 units, Weight per Table 5(a)).  Boolean-like attributes are easy
#: for the crowd
#: ("it is easier to identify if a recipe contains a tomato"): their
#: noise is small relative to their [0, 1] spread, which is what makes
#: the paper's single-answer correlations (heavy/BMI = 0.86) possible.
_DIFFICULTIES = {
    "bmi": 80.0,
    "weight": 189.0,
    "height": 60.0,
    "age": 45.0,
    "heavy": 0.035,
    "attractive": 0.07,
    "works_out": 0.06,
    "wrinkles": 0.05,
    "shoe_size": 4.0,
    "taller_than_you": 0.05,
    "gray_hair": 0.03,
    "old": 0.04,
    "has_children": 0.10,
    "good_facial_features": 0.07,
    "fat": 0.03,
    "has_good_style": 0.09,
    "is_smiling": 0.015,
    "wearing_glasses": 0.01,
    "long_hair": 0.02,
    "indoor_photo": 0.02,
}

#: Pairwise correlations. The first block is Table 5(a) verbatim; the
#: rest extend it consistently to the dismantling-answer attributes.
_CORRELATIONS = {
    # Table 5(a): S_a block (answer correlations among core attributes).
    ("bmi", "weight"): 0.94,
    ("bmi", "heavy"): 0.86,
    ("bmi", "attractive"): -0.48,
    ("bmi", "works_out"): -0.40,
    ("bmi", "wrinkles"): 0.26,
    ("weight", "heavy"): 0.82,
    ("weight", "attractive"): -0.53,
    ("weight", "works_out"): -0.39,
    ("weight", "wrinkles"): 0.28,
    ("heavy", "attractive"): -0.44,
    ("heavy", "works_out"): -0.46,
    ("heavy", "wrinkles"): 0.27,
    ("attractive", "works_out"): 0.32,
    ("attractive", "wrinkles"): -0.28,
    ("works_out", "wrinkles"): -0.15,
    # Table 5(a): S_o column for the Age target.
    ("age", "bmi"): 0.63,
    ("age", "weight"): 0.70,
    ("age", "heavy"): 0.60,
    ("age", "attractive"): -0.44,
    ("age", "works_out"): -0.29,
    ("age", "wrinkles"): 0.52,
    # Extensions for the remaining attributes (not published; chosen to
    # be physically sensible and to support the Table 4(a) taxonomy).
    ("height", "weight"): 0.45,
    ("height", "bmi"): 0.10,
    ("height", "age"): 0.30,
    ("height", "shoe_size"): 0.75,
    ("height", "taller_than_you"): 0.80,
    ("weight", "fat"): 0.80,
    ("bmi", "fat"): 0.85,
    ("heavy", "fat"): 0.82,
    ("age", "gray_hair"): 0.72,
    ("age", "old"): 0.85,
    ("age", "has_children"): 0.55,
    ("wrinkles", "gray_hair"): 0.50,
    ("wrinkles", "old"): 0.55,
    ("attractive", "good_facial_features"): 0.70,
    ("attractive", "has_good_style"): 0.50,
    ("attractive", "fat"): -0.40,
    ("works_out", "fat"): -0.45,
    ("shoe_size", "weight"): 0.35,
    ("taller_than_you", "weight"): 0.30,
}

#: Table 4(a): dismantling-answer frequencies, plus modest extensions
#: for attributes the paper did not list as dismantle subjects.
_TAXONOMY = DismantleTaxonomy(
    edges={
        "bmi": {
            "weight": 0.33,
            "height": 0.33,
            "age": 0.06,
            "attractive": 0.02,
            "heavy": 0.10,
            "fat": 0.06,
        },
        "height": {
            "age": 0.22,
            "taller_than_you": 0.07,
        },
        "taller_than_you": {
            "shoe_size": 0.25,
            "weight": 0.10,
            "bmi": 0.05,
        },
        "age": {
            "wrinkles": 0.15,
            "gray_hair": 0.10,
            "old": 0.10,
            "has_children": 0.03,
        },
        "attractive": {
            "good_facial_features": 0.17,
            "fat": 0.06,
            "has_good_style": 0.06,
            "works_out": 0.01,
        },
        "weight": {
            "heavy": 0.25,
            "fat": 0.20,
            "bmi": 0.08,
        },
        "heavy": {"fat": 0.30, "weight": 0.25, "works_out": 0.05},
        "fat": {"heavy": 0.30, "weight": 0.20, "works_out": 0.08},
        "wrinkles": {"old": 0.25, "age": 0.20, "gray_hair": 0.15},
        "old": {"age": 0.30, "gray_hair": 0.20, "wrinkles": 0.15},
        "works_out": {"fat": 0.15, "heavy": 0.12, "attractive": 0.10},
    }
)

_SYNONYMS = {
    "heavy": ("overweight", "big_boned"),
    "fat": ("chubby", "plump"),
    "attractive": ("good_looking", "pretty"),
    "old": ("elderly", "aged"),
    "works_out": ("athletic", "fit"),
}

#: Expert gold standards (the Sabato & Kalai expert lists, per the
#: paper's coverage experiment for the Height and Weight targets).
#: Several gold attributes are reachable only by dismantling
#: *discovered* attributes (the paper's red-meat/white-meat point) —
#: e.g. weight's works_out comes from dismantling heavy or fat, and
#: height's shoe_size from dismantling taller_than_you.
_GOLD = {
    "weight": frozenset(
        {
            "heavy",
            "fat",
            "bmi",
            "height",
            "works_out",
            "attractive",
            "age",
            "taller_than_you",
        }
    ),
    "height": frozenset(
        {"age", "shoe_size", "taller_than_you", "weight", "bmi"}
    ),
    "bmi": frozenset({"weight", "height", "heavy", "fat", "works_out"}),
    "age": frozenset({"wrinkles", "gray_hair", "old", "has_children"}),
}


def make_pictures_domain(n_objects: int = 500, seed: int = 0) -> GaussianDomain:
    """Build the calibrated Pictures domain.

    Parameters
    ----------
    n_objects:
        Number of people; the paper's chart provided several hundred.
    seed:
        Sampling seed for the true values.
    """
    names, correlation = extend_with_filler(
        _NAMES, correlation_from_pairs(_NAMES, _CORRELATIONS), _FILLER_NAMES
    )
    binary = _BINARY | set(_FILLER_NAMES)
    difficulties = {**_DIFFICULTIES, **{name: 0.05 for name in _FILLER_NAMES}}
    spec = GaussianDomainSpec(
        names=names,
        means=tuple(_MEANS.get(name, 0.5) for name in names),
        sigmas=tuple(_SIGMAS.get(name, 0.25) for name in names),
        correlation=correlation,
        difficulties=tuple(difficulties[name] for name in names),
        binary=tuple(name in binary for name in names),
        taxonomy=_TAXONOMY,
        synonyms=_SYNONYMS,
        gold_standards=_GOLD,
    )
    return GaussianDomain(spec, n_objects=n_objects, seed=seed, name="pictures")
