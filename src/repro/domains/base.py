"""Abstract domain interface.

A *domain* is the ground truth the simulated crowd answers about: a set
of objects, a universe of numerical attributes with true values per
object, a per-attribute *difficulty* (the variance of a single worker's
answer noise, i.e. the true ``S_c``), a dismantling taxonomy (which
related attributes workers suggest, and how often — the true generator
behind the paper's Table 4), and optional gold-standard attribute sets
for the coverage experiment.

Boolean attributes are modelled, as in the paper, as numerical
attributes with values in ``[0, 1]``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import lru_cache

import numpy as np

from repro.errors import UnknownAttributeError, UnknownObjectError

#: Sentinel key inside a dismantle distribution standing for "a worker
#: suggests something unrelated"; workers resolve it by sampling a
#: uniformly random attribute outside the related set.
IRRELEVANT = "__irrelevant__"


class Domain(ABC):
    """Ground truth world against which crowd answers are generated."""

    #: Human-readable domain name (``"pictures"``, ``"recipes"``, ...).
    name: str = "domain"

    # ------------------------------------------------------------------
    # Universe
    # ------------------------------------------------------------------

    @abstractmethod
    def attributes(self) -> tuple[str, ...]:
        """All attribute names in the domain's universe."""

    @abstractmethod
    def n_objects(self) -> int:
        """Number of objects in the domain."""

    def objects(self) -> range:
        """Object identifiers (dense integers ``0..n_objects()-1``)."""
        return range(self.n_objects())

    @abstractmethod
    def is_binary(self, attribute: str) -> bool:
        """True if ``attribute`` is boolean-like (values in ``[0, 1]``)."""

    def check_attribute(self, attribute: str) -> None:
        """Raise :class:`UnknownAttributeError` for names outside the universe."""
        if attribute not in self.attributes():
            raise UnknownAttributeError(attribute)

    def check_object(self, object_id: int) -> None:
        """Raise :class:`UnknownObjectError` for ids outside the object set."""
        if not 0 <= object_id < self.n_objects():
            raise UnknownObjectError(object_id)

    # ------------------------------------------------------------------
    # Ground truth values and statistics
    # ------------------------------------------------------------------

    @abstractmethod
    def true_value(self, object_id: int, attribute: str) -> float:
        """The true value ``o.a``."""

    def true_values(self, attribute: str) -> np.ndarray:
        """Vector of true values of ``attribute`` over all objects."""
        self.check_attribute(attribute)
        return np.array(
            [self.true_value(o, attribute) for o in self.objects()], dtype=float
        )

    @abstractmethod
    def difficulty(self, attribute: str) -> float:
        """Variance of one worker's answer noise for ``attribute``.

        This is the ground-truth ``S_c[a] = E_O[Var(o.a^(1))]``.
        """

    def true_variance(self, attribute: str) -> float:
        """Population variance of the attribute's true values."""
        return float(np.var(self.true_values(attribute)))

    def true_sigma(self, attribute: str) -> float:
        """Population standard deviation of the attribute's true values."""
        return float(np.sqrt(self.true_variance(attribute)))

    def answer_sigma(self, attribute: str) -> float:
        """Standard deviation of a single worker answer.

        Combines true-value spread with worker noise:
        ``sqrt(Var(o.a) + S_c[a])``.
        """
        return float(np.sqrt(self.true_variance(attribute) + self.difficulty(attribute)))

    def relevance(self, attribute_a: str, attribute_b: str) -> float:
        """Absolute correlation between the true values of two attributes.

        Used as the ground truth behind verification questions: the crowd
        tends to confirm a candidate iff the attributes really co-vary.
        """
        if attribute_a == attribute_b:
            return 1.0
        va = self.true_values(attribute_a)
        vb = self.true_values(attribute_b)
        sa = np.std(va)
        sb = np.std(vb)
        if sa == 0 or sb == 0:
            return 0.0
        return float(abs(np.corrcoef(va, vb)[0, 1]))

    #: Minimum true |correlation| for a candidate attribute to count as
    #: genuinely relevant in verification ground truth.
    relevance_threshold: float = 0.2

    def is_relevant(self, attribute: str, candidate: str) -> bool:
        """Ground truth of a verification question.

        The paper's verification question asks whether knowing the
        candidate *helps* estimating the attribute.  Helpfulness is
        wider than marginal correlation — height helps determine BMI by
        definition although the two barely correlate — so a candidate
        counts as relevant if it co-varies with the attribute *or* the
        two are semantically related in the domain's dismantling
        taxonomy (the structure the crowd's suggestions come from).
        """
        if self.relevance(attribute, candidate) >= self.relevance_threshold:
            return True
        distribution = self.dismantle_distribution(attribute)
        if distribution.get(candidate, 0.0) > 0.0:
            return True
        reverse = self.dismantle_distribution(candidate)
        return reverse.get(attribute, 0.0) > 0.0

    # ------------------------------------------------------------------
    # Dismantling taxonomy and surface forms
    # ------------------------------------------------------------------

    @abstractmethod
    def dismantle_distribution(self, attribute: str) -> dict[str, float]:
        """Distribution over answers to a dismantling question.

        Keys are attribute names (plus optionally :data:`IRRELEVANT`);
        values are probabilities summing to 1.  This is the generator
        whose empirical face is the paper's Table 4.
        """

    def synonyms(self, attribute: str) -> tuple[str, ...]:
        """Alternative surface forms workers may use for ``attribute``.

        The paper assumes a thesaurus/NLP step merges e.g. *large*,
        *big*, *grand* into one representative; the robustness
        experiment of Section 5.4 disables that merging.  The default is
        no synonyms.
        """
        self.check_attribute(attribute)
        return ()

    def gold_standard(self, target: str) -> frozenset[str]:
        """Expert gold-standard related attributes for ``target``.

        Used by the Section 5.3.1 coverage experiment.  Domains without
        curated sets return the empty set.
        """
        self.check_attribute(target)
        return frozenset()

    # ------------------------------------------------------------------
    # Example questions
    # ------------------------------------------------------------------

    def sample_object(self, rng: np.random.Generator) -> int:
        """Draw a uniformly random object, as a worker providing an example."""
        return int(rng.integers(0, self.n_objects()))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def answer_range(self, attribute: str) -> tuple[float, float]:
        """Plausible answer interval for ``attribute``.

        Binary attributes live in ``[0, 1]``; numeric ones get the true
        value range padded by two worker noise standard deviations.
        Spam workers sample uniformly from this interval.
        """
        if self.is_binary(attribute):
            return (0.0, 1.0)
        values = self.true_values(attribute)
        pad = 2.0 * float(np.sqrt(self.difficulty(attribute)))
        return (float(values.min()) - pad, float(values.max()) + pad)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"objects={self.n_objects()}, attributes={len(self.attributes())})"
        )


def cached_property_array(method):
    """Decorate a zero-argument Domain method with per-instance caching.

    Several base-class helpers recompute per-attribute vectors; concrete
    domains with large object sets can wrap their hot paths with this.
    """
    return lru_cache(maxsize=None)(method)
