"""Helpers for building calibrated domain specifications.

The paper publishes pairwise answer correlations (Table 5) and
dismantling-answer frequencies (Table 4) for its two real-life domains.
We rebuild each domain by declaring the salient pairwise correlations
and letting :func:`correlation_from_pairs` assemble a full matrix (the
unspecified pairs get a small background correlation, and the result is
projected onto the nearest valid correlation matrix at sampling time).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def correlation_from_pairs(
    names: tuple[str, ...],
    pairs: dict[tuple[str, str], float],
    background: float = 0.05,
) -> np.ndarray:
    """Build a correlation matrix from named pairwise entries.

    Parameters
    ----------
    names:
        Attribute order defining the matrix rows/columns.
    pairs:
        ``(a, b) -> rho`` entries (order-insensitive, each pair once).
    background:
        Correlation assigned to unspecified pairs — real attributes are
        rarely exactly independent, and a small common level keeps the
        matrix realistic.
    """
    index = {name: i for i, name in enumerate(names)}
    matrix = np.full((len(names), len(names)), background, dtype=float)
    np.fill_diagonal(matrix, 1.0)
    seen: set[frozenset[str]] = set()
    for (a, b), rho in pairs.items():
        if a not in index or b not in index:
            missing = a if a not in index else b
            raise ConfigurationError(f"correlation pair names unknown attribute {missing!r}")
        if a == b:
            raise ConfigurationError(f"self-correlation specified for {a!r}")
        key = frozenset((a, b))
        if key in seen:
            raise ConfigurationError(f"correlation for ({a!r}, {b!r}) given twice")
        seen.add(key)
        if not -1.0 <= rho <= 1.0:
            raise ConfigurationError(f"correlation out of range for ({a!r}, {b!r}): {rho}")
        matrix[index[a], index[b]] = rho
        matrix[index[b], index[a]] = rho
    return matrix


def extend_with_filler(
    names: tuple[str, ...],
    correlation: np.ndarray,
    filler_names: tuple[str, ...],
    background: float = 0.04,
    seed: int = 123,
) -> tuple[tuple[str, ...], np.ndarray]:
    """Append weakly-correlated filler attributes to a domain spec.

    Real crowds answer dismantling questions with a long, diverse tail
    of unhelpful suggestions ("is the photo indoors?").  Filler
    attributes give that tail somewhere realistic to land: each filler
    gets a tiny random correlation with everything (so verification
    rejects it) and dilutes the per-name frequency of irrelevant
    answers, matching the paper's Table 4 where taxonomy leaders
    dominate.

    Returns the extended name tuple and correlation matrix; callers
    extend means/sigmas/difficulties/binary themselves (fillers are
    easy boolean-like attributes).
    """
    rng = np.random.default_rng(seed)
    n_old = len(names)
    n_new = n_old + len(filler_names)
    extended = np.full((n_new, n_new), 0.0)
    extended[:n_old, :n_old] = correlation
    for i in range(n_old, n_new):
        extended[i, i] = 1.0
        for j in range(n_old):
            rho = float(rng.uniform(-background, background))
            extended[i, j] = rho
            extended[j, i] = rho
    return names + tuple(filler_names), extended


def attenuation(sigma_true: float, difficulty: float) -> float:
    """Expected |corr(answer, truth)| shrinkage from worker noise.

    A single answer ``truth + eps`` with ``Var(eps) = difficulty`` has
    ``corr(answer, truth) = sigma_true / sqrt(sigma_true^2 + difficulty)``.
    Used to translate the paper's published *answer* correlations into
    the *true-value* correlations a domain spec needs.
    """
    if sigma_true <= 0:
        raise ConfigurationError(f"sigma_true must be positive: {sigma_true}")
    if difficulty < 0:
        raise ConfigurationError(f"difficulty must be non-negative: {difficulty}")
    return sigma_true / float(np.sqrt(sigma_true**2 + difficulty))
