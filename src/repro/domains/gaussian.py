"""Correlated-attribute generative domain.

All calibrated domains (pictures, recipes, houses, laptops, synthetic)
are instances of :class:`GaussianDomain`: object true values are drawn
once from a multivariate normal with a specified correlation matrix,
then binary attributes are squashed into ``[0, 1]``.  Because worker
answer noise is independent of the true values, the population moments
the DisQ algorithm estimates (``S_o``, ``S_a``, ``S_c``) follow directly
from the specification, which is how we calibrate to the paper's
Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.domains.base import Domain
from repro.domains.taxonomy import DismantleTaxonomy
from repro.errors import ConfigurationError


def nearest_correlation(matrix: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Project a symmetric matrix onto the positive-definite correlation cone.

    Hand-written correlation tables (like the paper's Table 5) are often
    not exactly positive semi-definite; we clip negative eigenvalues and
    re-normalize the diagonal to 1.  The result is close to the input in
    Frobenius norm and always usable as a sampling covariance.
    """
    symmetric = (matrix + matrix.T) / 2.0
    eigenvalues, eigenvectors = np.linalg.eigh(symmetric)
    clipped = np.clip(eigenvalues, epsilon, None)
    rebuilt = (eigenvectors * clipped) @ eigenvectors.T
    scale = np.sqrt(np.diag(rebuilt))
    rebuilt = rebuilt / np.outer(scale, scale)
    np.fill_diagonal(rebuilt, 1.0)
    return rebuilt


@dataclass
class GaussianDomainSpec:
    """Declarative description of a :class:`GaussianDomain`.

    Parameters
    ----------
    names:
        Attribute names, defining the order of all matrix rows below.
    means, sigmas:
        Mean and standard deviation of each attribute's true values.
        Binary attributes should use means in ``(0, 1)`` and modest
        sigmas; their values are clipped into ``[0, 1]`` after sampling.
    correlation:
        Target correlation matrix of the true values (projected to the
        nearest valid correlation matrix before sampling).
    difficulties:
        Per-attribute worker answer-noise variance — the true ``S_c``.
    binary:
        Flags marking boolean-like attributes.
    taxonomy:
        Dismantling-answer distributions.
    synonyms:
        Optional per-attribute surface forms (for the normalization
        robustness experiment).
    gold_standards:
        Optional expert attribute sets per target (coverage experiment).
    """

    names: tuple[str, ...]
    means: tuple[float, ...]
    sigmas: tuple[float, ...]
    correlation: np.ndarray
    difficulties: tuple[float, ...]
    binary: tuple[bool, ...]
    taxonomy: DismantleTaxonomy = field(default_factory=DismantleTaxonomy)
    synonyms: dict[str, tuple[str, ...]] = field(default_factory=dict)
    gold_standards: dict[str, frozenset[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.names)
        if len(set(self.names)) != n:
            raise ConfigurationError("attribute names must be unique")
        for label, seq in (
            ("means", self.means),
            ("sigmas", self.sigmas),
            ("difficulties", self.difficulties),
            ("binary", self.binary),
        ):
            if len(seq) != n:
                raise ConfigurationError(
                    f"{label} has length {len(seq)}, expected {n} (one per attribute)"
                )
        self.correlation = np.asarray(self.correlation, dtype=float)
        if self.correlation.shape != (n, n):
            raise ConfigurationError(
                f"correlation matrix shape {self.correlation.shape} != ({n}, {n})"
            )
        if any(s <= 0 for s in self.sigmas):
            raise ConfigurationError("sigmas must be positive")
        if any(d < 0 for d in self.difficulties):
            raise ConfigurationError("difficulties must be non-negative")


class GaussianDomain(Domain):
    """A domain whose object true values follow a multivariate normal."""

    def __init__(
        self,
        spec: GaussianDomainSpec,
        n_objects: int = 500,
        seed: int = 0,
        name: str = "gaussian",
    ) -> None:
        if n_objects <= 1:
            raise ConfigurationError(f"need at least 2 objects, got {n_objects}")
        self.name = name
        self._spec = spec
        self._n_objects = n_objects
        self._index = {attribute: i for i, attribute in enumerate(spec.names)}

        rng = np.random.default_rng(seed)
        correlation = nearest_correlation(spec.correlation)
        sigmas = np.asarray(spec.sigmas, dtype=float)
        covariance = correlation * np.outer(sigmas, sigmas)
        values = rng.multivariate_normal(
            mean=np.asarray(spec.means, dtype=float),
            cov=covariance,
            size=n_objects,
            method="eigh",
        )
        for i, is_binary in enumerate(spec.binary):
            if is_binary:
                values[:, i] = np.clip(values[:, i], 0.0, 1.0)
        self._values = values
        # Relevance (|corr| of true values) is queried per verification
        # vote and per irrelevant-answer draw; precompute it once.
        with np.errstate(invalid="ignore"):
            corr = np.corrcoef(values, rowvar=False)
        self._abs_corr = np.abs(np.nan_to_num(corr, nan=0.0))

    # ------------------------------------------------------------------
    # Domain interface
    # ------------------------------------------------------------------

    @property
    def spec(self) -> GaussianDomainSpec:
        """The declarative specification this domain was built from."""
        return self._spec

    def attributes(self) -> tuple[str, ...]:
        return self._spec.names

    def n_objects(self) -> int:
        return self._n_objects

    def is_binary(self, attribute: str) -> bool:
        self.check_attribute(attribute)
        return self._spec.binary[self._index[attribute]]

    def true_value(self, object_id: int, attribute: str) -> float:
        self.check_object(object_id)
        self.check_attribute(attribute)
        return float(self._values[object_id, self._index[attribute]])

    def true_values(self, attribute: str) -> np.ndarray:
        self.check_attribute(attribute)
        return self._values[:, self._index[attribute]].copy()

    def difficulty(self, attribute: str) -> float:
        self.check_attribute(attribute)
        return self._spec.difficulties[self._index[attribute]]

    def relevance(self, attribute_a: str, attribute_b: str) -> float:
        self.check_attribute(attribute_a)
        self.check_attribute(attribute_b)
        return float(
            self._abs_corr[self._index[attribute_a], self._index[attribute_b]]
        )

    def dismantle_distribution(self, attribute: str) -> dict[str, float]:
        self.check_attribute(attribute)
        return self._spec.taxonomy.distribution(attribute)

    def synonyms(self, attribute: str) -> tuple[str, ...]:
        self.check_attribute(attribute)
        return self._spec.synonyms.get(attribute, ())

    def gold_standard(self, target: str) -> frozenset[str]:
        self.check_attribute(target)
        return self._spec.gold_standards.get(target, frozenset())

    # ------------------------------------------------------------------
    # Calibration helpers
    # ------------------------------------------------------------------

    def true_correlation_matrix(self) -> np.ndarray:
        """Empirical correlation matrix of the sampled true values."""
        return np.corrcoef(self._values, rowvar=False)

    def with_taxonomy(self, taxonomy: DismantleTaxonomy) -> "GaussianDomain":
        """Clone this domain with a replaced dismantling taxonomy.

        The clone shares the sampled true values, so value-question
        behaviour is identical — only dismantling answers change.  Used
        by the attribute-quality robustness experiment.
        """
        clone = object.__new__(GaussianDomain)
        clone.name = self.name
        clone._spec = GaussianDomainSpec(
            names=self._spec.names,
            means=self._spec.means,
            sigmas=self._spec.sigmas,
            correlation=self._spec.correlation,
            difficulties=self._spec.difficulties,
            binary=self._spec.binary,
            taxonomy=taxonomy,
            synonyms=self._spec.synonyms,
            gold_standards=self._spec.gold_standards,
        )
        clone._n_objects = self._n_objects
        clone._index = dict(self._index)
        clone._values = self._values
        clone._abs_corr = self._abs_corr
        return clone
