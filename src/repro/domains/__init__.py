"""Ground-truth domains: the worlds the simulated crowd answers about.

The paper used two real-life domains (pictures of people from a public
height/weight chart, and popular recipes from allrecipes.com) plus a
synthetic one.  We rebuild all of them as generative models whose
correlation and difficulty structure is calibrated to the statistics the
paper published (Tables 4 and 5), plus the two extra domains used by the
coverage experiment of Section 5.3.1 (house prices and laptop prices).
"""

from repro.domains.base import IRRELEVANT, Domain
from repro.domains.gaussian import GaussianDomain, GaussianDomainSpec
from repro.domains.taxonomy import DismantleTaxonomy
from repro.domains.pictures import make_pictures_domain
from repro.domains.recipes import make_recipes_domain
from repro.domains.houses import make_houses_domain
from repro.domains.laptops import make_laptops_domain
from repro.domains.synthetic import make_synthetic_domain

__all__ = [
    "Domain",
    "DismantleTaxonomy",
    "GaussianDomain",
    "GaussianDomainSpec",
    "IRRELEVANT",
    "make_houses_domain",
    "make_laptops_domain",
    "make_pictures_domain",
    "make_recipes_domain",
    "make_synthetic_domain",
]
