"""The Laptop-Prices domain (coverage experiment, Section 5.3.1).

The paper's second extra coverage domain is *laptop prices*, with the
hedonic price analysis of Chwelos, Berndt & Cockburn ("Faster, smaller,
cheaper") as the gold standard.  The attribute universe is the usual
hedonic feature set for portable computers: processor speed, memory,
storage, display, weight, battery, connectivity, brand and model age.
"""

from __future__ import annotations

from repro.domains.calibration import correlation_from_pairs, extend_with_filler
from repro.domains.gaussian import GaussianDomain, GaussianDomainSpec
from repro.domains.taxonomy import DismantleTaxonomy

_NAMES: tuple[str, ...] = (
    "price",
    "cpu_speed",
    "ram_gb",
    "storage_gb",
    "screen_size",
    "screen_resolution",
    "weight_kg",
    "battery_hours",
    "brand_premium",
    "model_age_years",
    "has_ssd",
    "has_dedicated_gpu",
    "build_quality",
    "is_touchscreen",
    "keyboard_backlight",
    "color_is_silver",
    "sticker_count",
)

#: Themed filler attributes: the realistic long tail of unhelpful crowd
#: suggestions.  Weakly correlated with everything, so verification
#: rejects them; their diversity keeps Table 4's leaders on top.
_FILLER_NAMES: tuple[str, ...] = (
    'lid_has_logo_glow',
    'box_included',
    'photo_on_desk',
    'num_usb_stickers',
    'color_name_fancy',
    'listing_has_emoji',
    'seller_top_rated',
    'photo_count_high',
    'has_carry_case',
    'keyboard_layout_us',
    'listed_on_weekend',
    'description_is_long',
    'bundle_includes_mouse',
    'warranty_card_shown',
    'screen_reflection_visible',
    'charger_cable_coiled',
)

_BINARY = {
    "has_ssd",
    "has_dedicated_gpu",
    "is_touchscreen",
    "keyboard_backlight",
    "color_is_silver",
}

_MEANS = {
    "price": 1100.0,
    "cpu_speed": 2.6,
    "ram_gb": 12.0,
    "storage_gb": 512.0,
    "screen_size": 14.5,
    "screen_resolution": 2.2,
    "weight_kg": 1.7,
    "battery_hours": 8.0,
    "brand_premium": 0.5,
    "model_age_years": 2.0,
    "build_quality": 0.6,
    "sticker_count": 2.0,
}

_SIGMAS = {
    "price": 450.0,
    "cpu_speed": 0.6,
    "ram_gb": 6.0,
    "storage_gb": 300.0,
    "screen_size": 1.4,
    "screen_resolution": 0.8,
    "weight_kg": 0.5,
    "battery_hours": 3.0,
    "brand_premium": 0.25,
    "model_age_years": 1.4,
    "build_quality": 0.2,
    "sticker_count": 1.5,
}

_DIFFICULTIES = {
    "price": 90000.0,
    "cpu_speed": 0.4,
    "ram_gb": 12.0,
    "storage_gb": 30000.0,
    "screen_size": 0.8,
    "screen_resolution": 0.5,
    "weight_kg": 0.15,
    "battery_hours": 5.0,
    "brand_premium": 0.06,
    "model_age_years": 1.0,
    "has_ssd": 0.08,
    "has_dedicated_gpu": 0.10,
    "build_quality": 0.05,
    "is_touchscreen": 0.04,
    "keyboard_backlight": 0.05,
    "color_is_silver": 0.02,
    "sticker_count": 0.8,
}

_CORRELATIONS = {
    ("price", "cpu_speed"): 0.62,
    ("price", "ram_gb"): 0.66,
    ("price", "storage_gb"): 0.55,
    ("price", "screen_resolution"): 0.50,
    ("price", "weight_kg"): -0.30,
    ("price", "battery_hours"): 0.35,
    ("price", "brand_premium"): 0.55,
    ("price", "model_age_years"): -0.52,
    ("price", "has_ssd"): 0.42,
    ("price", "has_dedicated_gpu"): 0.45,
    ("price", "build_quality"): 0.58,
    ("price", "screen_size"): 0.20,
    ("cpu_speed", "ram_gb"): 0.55,
    ("cpu_speed", "model_age_years"): -0.45,
    ("ram_gb", "storage_gb"): 0.50,
    ("ram_gb", "has_dedicated_gpu"): 0.40,
    ("storage_gb", "has_ssd"): 0.35,
    ("screen_size", "weight_kg"): 0.60,
    ("screen_size", "has_dedicated_gpu"): 0.35,
    ("weight_kg", "battery_hours"): -0.25,
    ("brand_premium", "build_quality"): 0.60,
    ("model_age_years", "has_ssd"): -0.40,
    ("screen_resolution", "is_touchscreen"): 0.30,
    ("build_quality", "keyboard_backlight"): 0.30,
}

_TAXONOMY = DismantleTaxonomy(
    edges={
        "price": {
            "cpu_speed": 0.15,
            "ram_gb": 0.12,
            "brand_premium": 0.12,
            "storage_gb": 0.08,
            "build_quality": 0.08,
        },
        "build_quality": {
            "brand_premium": 0.20,
            "weight_kg": 0.10,
            "keyboard_backlight": 0.08,
        },
        "cpu_speed": {"model_age_years": 0.20, "ram_gb": 0.15},
        "ram_gb": {"cpu_speed": 0.18, "storage_gb": 0.12, "has_dedicated_gpu": 0.08},
        "has_dedicated_gpu": {
            "screen_resolution": 0.12,
            "screen_size": 0.10,
            "ram_gb": 0.08,
        },
        "weight_kg": {"screen_size": 0.20, "battery_hours": 0.10},
        "storage_gb": {"has_ssd": 0.25, "ram_gb": 0.10},
        "screen_size": {"weight_kg": 0.25, "has_dedicated_gpu": 0.10},
        "battery_hours": {"weight_kg": 0.15, "screen_size": 0.10},
        "brand_premium": {"build_quality": 0.25, "price": 0.10},
        "model_age_years": {"cpu_speed": 0.15, "has_ssd": 0.12},
    }
)

#: Gold standard: the hedonic determinants of laptop price.
_GOLD = {
    "price": frozenset(
        {
            "cpu_speed",
            "ram_gb",
            "storage_gb",
            "screen_resolution",
            "weight_kg",
            "battery_hours",
            "brand_premium",
            "model_age_years",
            "has_ssd",
            "has_dedicated_gpu",
        }
    ),
}


def make_laptops_domain(n_objects: int = 500, seed: int = 0) -> GaussianDomain:
    """Build the laptop-prices domain used by the coverage experiment."""
    names, correlation = extend_with_filler(
        _NAMES, correlation_from_pairs(_NAMES, _CORRELATIONS), _FILLER_NAMES
    )
    binary = _BINARY | set(_FILLER_NAMES)
    difficulties = {**_DIFFICULTIES, **{name: 0.05 for name in _FILLER_NAMES}}
    spec = GaussianDomainSpec(
        names=names,
        means=tuple(_MEANS.get(name, 0.5) for name in names),
        sigmas=tuple(_SIGMAS.get(name, 0.25) for name in names),
        correlation=correlation,
        difficulties=tuple(difficulties[name] for name in names),
        binary=tuple(name in binary for name in names),
        taxonomy=_TAXONOMY,
        gold_standards=_GOLD,
    )
    return GaussianDomain(spec, n_objects=n_objects, seed=seed, name="laptops")
