"""Dismantling-answer taxonomies.

A :class:`DismantleTaxonomy` records, for each attribute, the
distribution of attribute names the crowd suggests when asked to
dismantle it.  The paper's Table 4 is an empirical sample from exactly
such a distribution (e.g. dismantling *Bmi* yields *Weight* 33% of the
time, *Height* 33%, *Age* 6%, *Attractive* 2%, and assorted unrelated
suggestions for the rest).

Frequencies need not sum to one: the remaining mass is assigned to
:data:`~repro.domains.base.IRRELEVANT`, which workers resolve into a
uniformly random unrelated attribute — modelling the noisy tail of real
crowd answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.domains.base import IRRELEVANT
from repro.errors import ConfigurationError


@dataclass
class DismantleTaxonomy:
    """Per-attribute distributions over dismantling answers.

    Parameters
    ----------
    edges:
        ``edges[a][b]`` is the probability that a worker asked to
        dismantle ``a`` answers ``b``.  Probabilities for one attribute
        must sum to at most 1; the shortfall becomes irrelevant-answer
        mass.
    default_irrelevant:
        Irrelevant mass used for attributes that have no entry in
        ``edges`` at all (the crowd still answers *something*).
    """

    edges: dict[str, dict[str, float]] = field(default_factory=dict)
    default_irrelevant: float = 1.0

    def __post_init__(self) -> None:
        for attribute, answers in self.edges.items():
            total = sum(answers.values())
            if total > 1.0 + 1e-9:
                raise ConfigurationError(
                    f"dismantle frequencies for {attribute!r} sum to {total:.3f} > 1"
                )
            for answer, probability in answers.items():
                if probability < 0:
                    raise ConfigurationError(
                        f"negative dismantle frequency for {attribute!r} -> {answer!r}"
                    )

    def distribution(self, attribute: str) -> dict[str, float]:
        """Full answer distribution for ``attribute``, incl. irrelevant mass."""
        answers = dict(self.edges.get(attribute, {}))
        irrelevant = max(0.0, 1.0 - sum(answers.values()))
        if attribute in self.edges:
            if irrelevant > 1e-12:
                answers[IRRELEVANT] = irrelevant
        else:
            answers[IRRELEVANT] = self.default_irrelevant
        return answers

    def related(self, attribute: str) -> tuple[str, ...]:
        """Attribute names with positive dismantle mass for ``attribute``."""
        return tuple(
            name
            for name, probability in self.edges.get(attribute, {}).items()
            if probability > 0
        )

    def all_mentioned(self) -> frozenset[str]:
        """Every attribute appearing anywhere in the taxonomy."""
        names: set[str] = set(self.edges)
        for answers in self.edges.values():
            names.update(answers)
        names.discard(IRRELEVANT)
        return frozenset(names)

    def with_extra_irrelevant(self, extra: float) -> "DismantleTaxonomy":
        """Return a degraded taxonomy with ``extra`` mass moved to irrelevant.

        Implements the Section 5.4 *attributes quality* robustness knob:
        every informative answer probability is scaled by ``1 - extra``
        so workers suggest unrelated attributes more often.
        """
        if not 0.0 <= extra < 1.0:
            raise ConfigurationError(f"extra irrelevant mass must be in [0, 1): {extra}")
        scaled = {
            attribute: {
                answer: probability * (1.0 - extra)
                for answer, probability in answers.items()
            }
            for attribute, answers in self.edges.items()
        }
        return DismantleTaxonomy(edges=scaled, default_irrelevant=self.default_irrelevant)
