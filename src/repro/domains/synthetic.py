"""Fully synthetic random domains (paper Section 5.1, "Synthetic Data").

The paper generated objects and attributes with random dependencies and
mocked crowd answers "in compliance with the assumptions on crowd's
answers" to neutralize the authors' own beliefs about which attributes
are hard or easy.  We do the same:

* true values follow a random low-rank factor model (each attribute
  loads on a few shared latent factors, guaranteeing a rich but
  consistent correlation structure);
* per-attribute difficulties are drawn log-uniformly over a
  configurable range, so the domain mixes easy and hard attributes;
* the dismantling taxonomy is derived from the realized correlations:
  the probability that a worker suggests ``b`` when dismantling ``a``
  grows with ``|corr(a, b)|`` — the paper's assumption that "workers
  are more likely to provide attributes that are correlative with the
  attribute in question".
"""

from __future__ import annotations

import numpy as np

from repro.domains.gaussian import GaussianDomain, GaussianDomainSpec
from repro.domains.taxonomy import DismantleTaxonomy
from repro.errors import ConfigurationError


def _factor_correlation(
    n_attributes: int, n_factors: int, rng: np.random.Generator
) -> np.ndarray:
    """Random correlation matrix from a latent factor model."""
    loadings = rng.normal(0.0, 1.0, size=(n_attributes, n_factors))
    # Per-attribute idiosyncratic variance keeps correlations below 1.
    idiosyncratic = rng.uniform(0.3, 1.2, size=n_attributes)
    covariance = loadings @ loadings.T + np.diag(idiosyncratic)
    scale = np.sqrt(np.diag(covariance))
    return covariance / np.outer(scale, scale)


def _taxonomy_from_correlation(
    names: tuple[str, ...],
    correlation: np.ndarray,
    informative_mass: float,
    min_rho: float,
) -> DismantleTaxonomy:
    """Dismantle distributions proportional to |correlation|."""
    edges: dict[str, dict[str, float]] = {}
    for i, name in enumerate(names):
        rhos = {
            other: abs(float(correlation[i, j]))
            for j, other in enumerate(names)
            if j != i and abs(correlation[i, j]) >= min_rho
        }
        total = sum(rhos.values())
        if total <= 0:
            continue
        edges[name] = {
            other: informative_mass * rho / total for other, rho in rhos.items()
        }
    return DismantleTaxonomy(edges=edges)


def make_synthetic_domain(
    n_attributes: int = 15,
    n_objects: int = 400,
    n_factors: int = 4,
    difficulty_range: tuple[float, float] = (0.05, 4.0),
    informative_mass: float = 0.7,
    min_rho: float = 0.25,
    binary_fraction: float = 0.0,
    seed: int = 0,
) -> GaussianDomain:
    """Generate a random correlated domain.

    Parameters
    ----------
    n_attributes:
        Universe size; attributes are named ``attr_00``, ``attr_01``, ...
    n_objects:
        Number of objects to sample.
    n_factors:
        Latent factors behind the correlation structure.
    difficulty_range:
        Log-uniform range of worker-noise variances (relative to unit
        true-value variance).
    informative_mass:
        Fraction of dismantling answers that are correlation-driven
        (the rest are irrelevant).
    min_rho:
        Minimum |correlation| for an attribute to appear as a
        dismantling answer.
    binary_fraction:
        Fraction of attributes modelled as boolean-like.
    seed:
        Master seed for structure and sampling.
    """
    if n_attributes < 2:
        raise ConfigurationError("need at least 2 attributes")
    if not 0.0 < informative_mass <= 1.0:
        raise ConfigurationError("informative_mass must be in (0, 1]")
    low, high = difficulty_range
    if not 0 < low <= high:
        raise ConfigurationError(f"bad difficulty range: {difficulty_range}")

    rng = np.random.default_rng(seed)
    names = tuple(f"attr_{i:02d}" for i in range(n_attributes))
    correlation = _factor_correlation(n_attributes, n_factors, rng)
    difficulties = tuple(
        float(np.exp(rng.uniform(np.log(low), np.log(high))))
        for _ in range(n_attributes)
    )
    n_binary = int(round(binary_fraction * n_attributes))
    binary_indices = set(
        rng.choice(n_attributes, size=n_binary, replace=False).tolist()
        if n_binary
        else []
    )
    binary = tuple(i in binary_indices for i in range(n_attributes))
    means = tuple(0.5 if binary[i] else 0.0 for i in range(n_attributes))
    sigmas = tuple(0.25 if binary[i] else 1.0 for i in range(n_attributes))
    # Binary attributes get difficulties on the [0, 1] scale.
    difficulties = tuple(
        min(difficulties[i], 0.25) if binary[i] else difficulties[i]
        for i in range(n_attributes)
    )

    spec = GaussianDomainSpec(
        names=names,
        means=means,
        sigmas=sigmas,
        correlation=correlation,
        difficulties=difficulties,
        binary=binary,
        taxonomy=_taxonomy_from_correlation(
            names, correlation, informative_mass, min_rho
        ),
    )
    return GaussianDomain(spec, n_objects=n_objects, seed=seed + 1, name="synthetic")
