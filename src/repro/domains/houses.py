"""The House-Prices domain (coverage experiment, Section 5.3.1).

The paper validated its attribute-discovery coverage on two extra
real-life attribute domains, one of them *house prices* with the
Harrison & Rubinfeld hedonic-housing study as the gold standard.  We
rebuild a domain whose attribute universe is the classic Boston-housing
feature set (crime rate, rooms, NOx, accessibility, tax, pupil/teacher
ratio, lower-status share, Charles-river adjacency, ...) with
correlations matching the well-known signs of that study.
"""

from __future__ import annotations

from repro.domains.calibration import correlation_from_pairs, extend_with_filler
from repro.domains.gaussian import GaussianDomain, GaussianDomainSpec
from repro.domains.taxonomy import DismantleTaxonomy

_NAMES: tuple[str, ...] = (
    "price",
    "rooms",
    "lower_status_share",
    "crime_rate",
    "pupil_teacher_ratio",
    "tax_rate",
    "nox_concentration",
    "distance_to_employment",
    "highway_access",
    "industrial_share",
    "old_buildings_share",
    "charles_river",
    "zoned_large_lots",
    "neighborhood_quality",
    "house_size",
    "has_garden",
    "is_painted_white",
    "street_name_length",
)

#: Themed filler attributes: the realistic long tail of unhelpful crowd
#: suggestions.  Weakly correlated with everything, so verification
#: rejects them; their diversity keeps Table 4's leaders on top.
_FILLER_NAMES: tuple[str, ...] = (
    'door_color_red',
    'has_flag_pole',
    'mailbox_style_classic',
    'curtains_visible',
    'lawn_recently_mowed',
    'driveway_paved',
    'house_number_even',
    'photo_taken_in_winter',
    'has_porch_swing',
    'fence_is_white',
    'chimney_visible',
    'two_car_garage_door',
    'name_plate_visible',
    'window_count_high',
    'roof_color_dark',
    'tree_in_front_yard',
)

_BINARY = {"charles_river", "has_garden", "is_painted_white"}

_MEANS = {
    "price": 22.5,
    "rooms": 6.3,
    "lower_status_share": 12.7,
    "crime_rate": 3.6,
    "pupil_teacher_ratio": 18.5,
    "tax_rate": 408.0,
    "nox_concentration": 0.55,
    "distance_to_employment": 3.8,
    "highway_access": 9.5,
    "industrial_share": 11.1,
    "old_buildings_share": 68.0,
    "zoned_large_lots": 11.0,
    "neighborhood_quality": 0.6,
    "house_size": 120.0,
    "street_name_length": 8.0,
}

_SIGMAS = {
    "price": 9.2,
    "rooms": 0.7,
    "lower_status_share": 7.1,
    "crime_rate": 8.6,
    "pupil_teacher_ratio": 2.2,
    "tax_rate": 168.0,
    "nox_concentration": 0.12,
    "distance_to_employment": 2.1,
    "highway_access": 8.7,
    "industrial_share": 6.9,
    "old_buildings_share": 28.0,
    "zoned_large_lots": 23.0,
    "neighborhood_quality": 0.2,
    "house_size": 40.0,
    "street_name_length": 3.0,
}

_DIFFICULTIES = {
    "price": 90.0,
    "rooms": 0.5,
    "lower_status_share": 30.0,
    "crime_rate": 50.0,
    "pupil_teacher_ratio": 4.0,
    "tax_rate": 20000.0,
    "nox_concentration": 0.02,
    "distance_to_employment": 2.0,
    "highway_access": 30.0,
    "industrial_share": 25.0,
    "old_buildings_share": 400.0,
    "charles_river": 0.05,
    "zoned_large_lots": 300.0,
    "neighborhood_quality": 0.05,
    "house_size": 900.0,
    "has_garden": 0.06,
    "is_painted_white": 0.04,
    "street_name_length": 2.0,
}

#: Correlation signs/sizes follow the Boston-housing literature.
_CORRELATIONS = {
    ("price", "rooms"): 0.70,
    ("price", "lower_status_share"): -0.74,
    ("price", "crime_rate"): -0.39,
    ("price", "pupil_teacher_ratio"): -0.51,
    ("price", "tax_rate"): -0.47,
    ("price", "nox_concentration"): -0.43,
    ("price", "distance_to_employment"): 0.25,
    ("price", "highway_access"): -0.38,
    ("price", "industrial_share"): -0.48,
    ("price", "old_buildings_share"): -0.38,
    ("price", "charles_river"): 0.18,
    ("price", "zoned_large_lots"): 0.36,
    ("price", "neighborhood_quality"): 0.65,
    ("price", "house_size"): 0.60,
    ("rooms", "house_size"): 0.70,
    ("rooms", "lower_status_share"): -0.61,
    ("crime_rate", "neighborhood_quality"): -0.55,
    ("crime_rate", "lower_status_share"): 0.46,
    ("crime_rate", "highway_access"): 0.63,
    ("tax_rate", "highway_access"): 0.91,
    ("tax_rate", "industrial_share"): 0.72,
    ("nox_concentration", "industrial_share"): 0.76,
    ("nox_concentration", "distance_to_employment"): -0.77,
    ("nox_concentration", "old_buildings_share"): 0.73,
    ("industrial_share", "distance_to_employment"): -0.71,
    ("old_buildings_share", "distance_to_employment"): -0.75,
    ("lower_status_share", "neighborhood_quality"): -0.60,
    ("zoned_large_lots", "distance_to_employment"): 0.66,
    ("pupil_teacher_ratio", "tax_rate"): 0.46,
    ("neighborhood_quality", "has_garden"): 0.35,
}

_TAXONOMY = DismantleTaxonomy(
    edges={
        "price": {
            "rooms": 0.18,
            "house_size": 0.16,
            "neighborhood_quality": 0.14,
            "crime_rate": 0.08,
            "tax_rate": 0.04,
            "zoned_large_lots": 0.02,
        },
        "neighborhood_quality": {
            "crime_rate": 0.20,
            "lower_status_share": 0.12,
            "pupil_teacher_ratio": 0.10,
            "nox_concentration": 0.06,
            "industrial_share": 0.05,
            "charles_river": 0.03,
        },
        "house_size": {"rooms": 0.30, "zoned_large_lots": 0.10, "has_garden": 0.08},
        "rooms": {"house_size": 0.30, "price": 0.08},
        "crime_rate": {
            "lower_status_share": 0.18,
            "neighborhood_quality": 0.15,
            "highway_access": 0.05,
        },
        "tax_rate": {"highway_access": 0.15, "industrial_share": 0.12},
        "nox_concentration": {
            "industrial_share": 0.20,
            "distance_to_employment": 0.12,
            "old_buildings_share": 0.08,
        },
        "lower_status_share": {"crime_rate": 0.15, "pupil_teacher_ratio": 0.10},
    }
)

#: Gold standard: the Harrison & Rubinfeld hedonic price determinants.
_GOLD = {
    "price": frozenset(
        {
            "rooms",
            "lower_status_share",
            "crime_rate",
            "pupil_teacher_ratio",
            "tax_rate",
            "nox_concentration",
            "distance_to_employment",
            "highway_access",
            "industrial_share",
            "old_buildings_share",
            "charles_river",
            "zoned_large_lots",
        }
    ),
}


def make_houses_domain(n_objects: int = 500, seed: int = 0) -> GaussianDomain:
    """Build the house-prices domain used by the coverage experiment."""
    names, correlation = extend_with_filler(
        _NAMES, correlation_from_pairs(_NAMES, _CORRELATIONS), _FILLER_NAMES
    )
    binary = _BINARY | set(_FILLER_NAMES)
    difficulties = {**_DIFFICULTIES, **{name: 0.05 for name in _FILLER_NAMES}}
    spec = GaussianDomainSpec(
        names=names,
        means=tuple(_MEANS.get(name, 0.5) for name in names),
        sigmas=tuple(_SIGMAS.get(name, 0.25) for name in names),
        correlation=correlation,
        difficulties=tuple(difficulties[name] for name in names),
        binary=tuple(name in binary for name in names),
        taxonomy=_TAXONOMY,
        gold_standards=_GOLD,
    )
    return GaussianDomain(spec, n_objects=n_objects, seed=seed, name="houses")
