"""The Recipes domain (paper Section 5.1, Tables 4b and 5b).

The paper's objects are the 500 most popular recipes of allrecipes.com
(normalized to one serving); the site's nutrition facts give ground
truth for *Calories* and *Protein*, other targets use averaged crowd
estimates.  We rebuild the domain generatively with:

* Table 5(b)'s correlation and difficulty structure — note the huge
  worker-noise variance for calories (80707, i.e. a ~284-calorie
  standard deviation per answer), which is exactly why the paper calls
  these attributes "hard for the crowd to estimate";
* Table 4(b)'s dismantling-answer frequencies (*Calories -> Has Eggs
  8%, Low Calories 4%, Dessert 2%, Healthy 2%*, etc.);
* a dietitian-style gold standard for *Protein* and *Calories* as in
  the coverage experiment.
"""

from __future__ import annotations

from repro.domains.calibration import correlation_from_pairs, extend_with_filler
from repro.domains.gaussian import GaussianDomain, GaussianDomainSpec
from repro.domains.taxonomy import DismantleTaxonomy

_NAMES: tuple[str, ...] = (
    "calories",
    "protein",
    "low_calorie",
    "dessert",
    "healthy",
    "vegetarian",
    "number_of_eggs",
    "meat_grams",
    "dairy_grams",
    "has_eggs",
    "has_meat",
    "high_protein",
    "low_salt",
    "natural",
    "fat_amount",
    "bitter",
    "number_of_ingredients",
    "fast",
    "tasty",
    "expensive",
    "easy_to_make",
    "good_for_kids",
    "sweet",
    "spicy",
    "is_soup",
    "is_brown",
    "time_to_prepare",
)

#: Themed filler attributes: the realistic long tail of unhelpful crowd
#: suggestions.  Weakly correlated with everything, so verification
#: rejects them; their diversity keeps Table 4's leaders on top.
_FILLER_NAMES: tuple[str, ...] = (
    'plate_color_white',
    'photo_has_garnish',
    'served_in_bowl',
    'has_fancy_name',
    'recipe_has_story',
    'photo_is_closeup',
    'uses_metric_units',
    'author_is_verified',
    'has_video',
    'comment_count_high',
    'posted_recently',
    'title_is_long',
    'photo_count_high',
    'has_nutrition_label',
    'cutlery_visible',
    'napkin_visible',
)

_BINARY = {
    "low_calorie",
    "dessert",
    "healthy",
    "vegetarian",
    "has_eggs",
    "has_meat",
    "high_protein",
    "low_salt",
    "natural",
    "bitter",
    "fast",
    "tasty",
    "expensive",
    "easy_to_make",
    "good_for_kids",
    "sweet",
    "spicy",
    "is_soup",
    "is_brown",
}

_MEANS = {
    "calories": 350.0,
    "protein": 15.0,
    "number_of_eggs": 1.2,
    "meat_grams": 80.0,
    "dairy_grams": 50.0,
    "fat_amount": 14.0,
    "number_of_ingredients": 8.0,
    "time_to_prepare": 45.0,
}

_SIGMAS = {
    "calories": 130.0,
    "protein": 9.0,
    "number_of_eggs": 1.0,
    "meat_grams": 60.0,
    "dairy_grams": 40.0,
    "fat_amount": 8.0,
    "number_of_ingredients": 3.0,
    "time_to_prepare": 25.0,
}

#: Worker-noise variances.  Numeric attributes follow Table 5(b)'s
#: ``S_c`` column — note calories' enormous 80707 (a ~284-calorie
#: per-answer standard deviation), the paper's canonical "hard"
#: attribute.  Boolean-like attributes are easy for the crowd, with
#: small noise relative to their [0, 1] spread; contentious judgements
#: (healthy, tasty) are noisier than factual ones (has_meat, is_soup).
_DIFFICULTIES = {
    "calories": 80707.0,
    "protein": 550.0,
    "low_calorie": 0.035,
    "dessert": 0.02,
    "healthy": 0.09,
    "vegetarian": 0.04,
    "number_of_eggs": 0.5,
    "meat_grams": 450.0,
    "dairy_grams": 380.0,
    "has_eggs": 0.025,
    "has_meat": 0.015,
    "high_protein": 0.06,
    "low_salt": 0.08,
    "natural": 0.09,
    "fat_amount": 40.0,
    "bitter": 0.05,
    "number_of_ingredients": 3.0,
    "fast": 0.04,
    "tasty": 0.08,
    "expensive": 0.07,
    "easy_to_make": 0.05,
    "good_for_kids": 0.06,
    "sweet": 0.02,
    "spicy": 0.03,
    "is_soup": 0.01,
    "is_brown": 0.02,
    "time_to_prepare": 200.0,
}

#: Pairwise true-value correlations. The Table 5(b) block is kept close
#: to the published answer correlations (their |values| — the paper
#: stores absolute covariances); extensions are nutrition-sensible.
_CORRELATIONS = {
    # Table 5(b) core block.
    ("calories", "protein"): 0.45,
    ("calories", "low_calorie"): -0.40,
    ("calories", "dessert"): 0.26,
    ("calories", "healthy"): -0.25,
    ("calories", "vegetarian"): -0.26,
    ("calories", "number_of_eggs"): 0.11,
    ("protein", "low_calorie"): -0.18,
    ("protein", "dessert"): -0.50,
    ("protein", "healthy"): 0.16,
    ("protein", "vegetarian"): -0.52,
    ("protein", "number_of_eggs"): 0.26,
    ("low_calorie", "dessert"): -0.10,
    ("low_calorie", "healthy"): 0.26,
    ("low_calorie", "vegetarian"): 0.10,
    ("low_calorie", "number_of_eggs"): -0.13,
    ("dessert", "healthy"): -0.44,
    ("dessert", "vegetarian"): 0.34,
    ("dessert", "number_of_eggs"): 0.38,
    ("healthy", "vegetarian"): 0.06,
    ("healthy", "number_of_eggs"): -0.27,
    ("vegetarian", "number_of_eggs"): 0.14,
    # Extensions.
    ("protein", "meat_grams"): 0.90,
    ("protein", "dairy_grams"): 0.45,
    ("meat_grams", "has_meat"): 0.80,
    ("meat_grams", "vegetarian"): -0.70,
    ("meat_grams", "calories"): 0.40,
    ("meat_grams", "high_protein"): 0.60,
    ("dairy_grams", "dessert"): 0.25,
    ("dairy_grams", "fat_amount"): 0.35,
    ("protein", "has_meat"): 0.78,
    ("protein", "high_protein"): 0.82,
    ("protein", "has_eggs"): 0.30,
    ("calories", "fat_amount"): 0.65,
    ("calories", "sweet"): 0.30,
    ("calories", "has_meat"): 0.35,
    ("has_meat", "vegetarian"): -0.85,
    ("has_meat", "dessert"): -0.45,
    ("has_eggs", "number_of_eggs"): 0.85,
    ("has_eggs", "dessert"): 0.35,
    ("healthy", "low_salt"): 0.40,
    ("healthy", "natural"): 0.45,
    ("healthy", "fat_amount"): -0.45,
    ("healthy", "bitter"): 0.10,
    ("sweet", "dessert"): 0.75,
    ("sweet", "spicy"): -0.35,
    ("sweet", "bitter"): -0.30,
    ("easy_to_make", "number_of_ingredients"): -0.60,
    ("easy_to_make", "fast"): 0.55,
    ("easy_to_make", "time_to_prepare"): -0.65,
    ("easy_to_make", "expensive"): -0.25,
    ("easy_to_make", "tasty"): 0.10,
    ("fast", "time_to_prepare"): -0.70,
    ("fast", "number_of_ingredients"): -0.40,
    ("good_for_kids", "sweet"): 0.40,
    ("good_for_kids", "spicy"): -0.50,
    ("good_for_kids", "easy_to_make"): 0.25,
    ("fat_amount", "low_calorie"): -0.45,
    ("fat_amount", "dessert"): 0.30,
    ("high_protein", "has_meat"): 0.60,
    ("high_protein", "vegetarian"): -0.45,
}

#: Table 4(b) dismantling frequencies, plus extensions for multi-hop
#: discovery (e.g. has_meat distinguishes further protein signals).
_TAXONOMY = DismantleTaxonomy(
    edges={
        # Table 4(b) verbatim: Calories -> Has Eggs 8%, Low Calories 4%,
        # Dessert 2%, Healthy 2%; Protein -> Has Meat 13%, Number of
        # Eggs 4%, High Protein 4%, Vegetarian 2%.  The quantity
        # attributes (meat/dairy grams) surface only when dismantling
        # the discovered attributes — the paper's multi-hop point.
        "calories": {
            "has_eggs": 0.08,
            "low_calorie": 0.04,
            "dessert": 0.02,
            "healthy": 0.02,
        },
        "protein": {
            "has_meat": 0.13,
            "number_of_eggs": 0.04,
            "high_protein": 0.04,
            "vegetarian": 0.02,
        },
        "healthy": {
            "low_salt": 0.08,
            "natural": 0.08,
            "fat_amount": 0.04,
            "bitter": 0.04,
            "low_calorie": 0.08,
            "vegetarian": 0.05,
        },
        "easy_to_make": {
            "number_of_ingredients": 0.17,
            "fast": 0.10,
            "tasty": 0.05,
            "expensive": 0.02,
            "time_to_prepare": 0.12,
        },
        "dessert": {
            "sweet": 0.30,
            "has_eggs": 0.10,
            "good_for_kids": 0.08,
            "dairy_grams": 0.06,
        },
        "good_for_kids": {
            "sweet": 0.20,
            "spicy": 0.12,
            "easy_to_make": 0.10,
            "tasty": 0.10,
        },
        "fat_amount": {
            "calories": 0.15,
            "healthy": 0.10,
            "dessert": 0.08,
            "meat_grams": 0.08,
        },
        "has_meat": {
            "vegetarian": 0.25,
            "protein": 0.15,
            "high_protein": 0.12,
            "meat_grams": 0.15,
        },
        "has_eggs": {"number_of_eggs": 0.35, "dessert": 0.12},
        "number_of_eggs": {"has_eggs": 0.35, "dessert": 0.10},
        "low_calorie": {"healthy": 0.20, "fat_amount": 0.12, "calories": 0.10},
        "vegetarian": {"has_meat": 0.30, "healthy": 0.10},
        "sweet": {"dessert": 0.30, "bitter": 0.10},
        "high_protein": {"has_meat": 0.25, "protein": 0.15},
        "fast": {"time_to_prepare": 0.30, "easy_to_make": 0.15},
        "time_to_prepare": {"fast": 0.25, "number_of_ingredients": 0.15},
    }
)

_SYNONYMS = {
    "has_meat": ("contains_meat", "meaty"),
    "sweet": ("sugary", "sweet_tasting"),
    "fast": ("quick", "speedy"),
    "low_calorie": ("light", "dietetic"),
    "number_of_ingredients": ("ingredient_count",),
}

#: Dietitian-style gold standards used by the coverage experiment.
#: Roughly half of each set requires dismantling *discovered*
#: attributes (meat_grams via has_meat, dairy_grams via dessert, ...).
_GOLD = {
    "protein": frozenset(
        {
            "has_meat",
            "number_of_eggs",
            "high_protein",
            "vegetarian",
            "has_eggs",
            "meat_grams",
            "dairy_grams",
            "dessert",
        }
    ),
    "calories": frozenset(
        {
            "has_eggs",
            "low_calorie",
            "dessert",
            "healthy",
            "fat_amount",
            "sweet",
            "meat_grams",
            "dairy_grams",
        }
    ),
    "healthy": frozenset(
        {"low_salt", "natural", "fat_amount", "bitter", "low_calorie"}
    ),
    "easy_to_make": frozenset(
        {"number_of_ingredients", "fast", "tasty", "expensive", "time_to_prepare"}
    ),
}


def make_recipes_domain(n_objects: int = 500, seed: int = 0) -> GaussianDomain:
    """Build the calibrated Recipes domain (500 recipes by default)."""
    names, correlation = extend_with_filler(
        _NAMES, correlation_from_pairs(_NAMES, _CORRELATIONS), _FILLER_NAMES
    )
    binary = _BINARY | set(_FILLER_NAMES)
    difficulties = {**_DIFFICULTIES, **{name: 0.05 for name in _FILLER_NAMES}}
    spec = GaussianDomainSpec(
        names=names,
        means=tuple(_MEANS.get(name, 0.5) for name in names),
        sigmas=tuple(_SIGMAS.get(name, 0.25) for name in names),
        correlation=correlation,
        difficulties=tuple(difficulties[name] for name in names),
        binary=tuple(name in binary for name in names),
        taxonomy=_TAXONOMY,
        synonyms=_SYNONYMS,
        gold_standards=_GOLD,
    )
    return GaussianDomain(spec, n_objects=n_objects, seed=seed, name="recipes")
