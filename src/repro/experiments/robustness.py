"""The Section 5.4 robustness experiments.

Each function perturbs one assumption and re-runs the core comparison,
so the benches can check the paper's claims:

* *Attributes quality* — inflate the irrelevant-answer rate of
  dismantling questions; trends must hold at a somewhat higher
  ``B_prc``.
* *Normalization mechanism* — run with imperfect or disabled synonym
  merging; same expectation.
* *Answer's correlation parameter* — vary the ``E[rho] ~ 0.5`` constant
  of expression 5; results should stay similar.
* *Crowd-task payment* — scale the price schedule; gradients change,
  trends stay.
* *Crowd faults* (beyond the paper) — inject worker timeouts, abandons
  and garbage answers at increasing rates; with retries and graceful
  degradation every algorithm must still return a usable plan and the
  DisQ-beats-baselines trend should survive moderate fault rates.

Plus an ablation (flagged in DESIGN.md) of the optimistic priors used
by the next-dismantle scorer.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.model import Query
from repro.core.online import OnlineEvaluator, query_error
from repro.core.model import PreprocessingPlan
from repro.crowd.faults import FaultProfile
from repro.crowd.normalization import AttributeNormalizer, NormalizationMode
from repro.crowd.platform import CrowdPlatform
from repro.crowd.pricing import PriceSchedule
from repro.crowd.recording import AnswerRecorder
from repro.domains.gaussian import GaussianDomain
from repro.errors import CrowdFaultError, PlanningError
from repro.experiments.config import ExperimentConfig, algorithm
from repro.obs import Observability

import numpy as np


def _run_on_platform(
    name: str,
    platform: CrowdPlatform,
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
) -> float:
    plans = algorithm(name)(
        platform, query, b_obj_cents, b_prc_cents, config.make_params()
    )
    if isinstance(plans, PreprocessingPlan):
        plans = [plans]
    evaluator = OnlineEvaluator(platform.fork(), plans)
    object_ids = range(min(config.eval_objects, domain.n_objects()))
    estimates = evaluator.evaluate(object_ids)
    return query_error(domain, estimates, object_ids, query)


def _averaged(
    name: str,
    make_platform,
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
) -> float:
    errors = []
    for seed in range(config.repetitions):
        try:
            errors.append(
                _run_on_platform(
                    name,
                    make_platform(seed),
                    domain,
                    query,
                    b_obj_cents,
                    b_prc_cents,
                    config,
                )
            )
        except (PlanningError, CrowdFaultError):
            # A run the planner could not salvage (tiny budget, or a
            # fault-injection run without graceful degradation) is
            # skipped; the point averages the runs that completed.
            continue
    return float(np.mean(errors)) if errors else float("inf")


def with_degraded_taxonomy(
    algorithms: Sequence[str],
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
    extra_irrelevant: float = 0.3,
    obs: Observability | None = None,
) -> dict[str, float]:
    """*Attributes quality*: more irrelevant dismantling answers."""
    degraded = domain.with_taxonomy(
        domain.spec.taxonomy.with_extra_irrelevant(extra_irrelevant)
    )

    def make_platform(seed: int) -> CrowdPlatform:
        return CrowdPlatform(degraded, recorder=AnswerRecorder(), seed=seed, obs=obs)

    return {
        name: _averaged(
            name, make_platform, degraded, query, b_obj_cents, b_prc_cents, config
        )
        for name in algorithms
    }


def with_normalization_mode(
    algorithms: Sequence[str],
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
    mode: NormalizationMode = NormalizationMode.NONE,
    failure_rate: float = 0.3,
    obs: Observability | None = None,
) -> dict[str, float]:
    """*Normalization mechanism*: imperfect or absent synonym merging."""

    def make_platform(seed: int) -> CrowdPlatform:
        return CrowdPlatform(
            domain,
            recorder=AnswerRecorder(),
            normalizer=AttributeNormalizer(
                domain, mode=mode, failure_rate=failure_rate, seed=seed
            ),
            seed=seed,
            obs=obs,
        )

    return {
        name: _averaged(
            name, make_platform, domain, query, b_obj_cents, b_prc_cents, config
        )
        for name in algorithms
    }


def with_rho_constant(
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
    rho_values: Sequence[float] = (0.3, 0.5, 0.7),
    obs: Observability | None = None,
) -> dict[float, float]:
    """*Answer's correlation parameter*: vary the expression-5 prior."""

    def make_platform(seed: int) -> CrowdPlatform:
        return CrowdPlatform(domain, recorder=AnswerRecorder(), seed=seed, obs=obs)

    results = {}
    for rho in rho_values:
        rho_config = config.scaled(
            params_overrides={**config.params_overrides, "rho_constant": rho}
        )
        results[rho] = _averaged(
            "DisQ", make_platform, domain, query, b_obj_cents, b_prc_cents, rho_config
        )
    return results


def with_fault_profile(
    algorithms: Sequence[str],
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
    fault_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    latency_mean: float = 2.0,
    obs: Observability | None = None,
) -> dict[float, dict[str, float]]:
    """*Crowd faults*: query error per algorithm as faults intensify.

    Workers time out, abandon and answer garbage at each rate in
    ``fault_rates`` (rate 0.0 is the clean baseline); planners run with
    graceful degradation enabled so starved statistics salvage a
    partial plan instead of aborting.  Returns
    ``{fault_rate: {algorithm: error}}``.
    """
    fault_config = config.scaled(
        params_overrides={
            **config.params_overrides,
            "graceful_degradation": True,
        }
    )
    results: dict[float, dict[str, float]] = {}
    for rate in fault_rates:
        profile = (
            FaultProfile.uniform(rate, latency_mean=latency_mean)
            if rate > 0
            else FaultProfile.none()
        )

        def make_platform(seed: int) -> CrowdPlatform:
            return CrowdPlatform(
                domain, recorder=AnswerRecorder(), seed=seed, faults=profile,
                obs=obs,
            )

        results[rate] = {
            name: _averaged(
                name,
                make_platform,
                domain,
                query,
                b_obj_cents,
                b_prc_cents,
                fault_config,
            )
            for name in algorithms
        }
    return results


def with_price_scale(
    algorithms: Sequence[str],
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
    scale: float = 2.0,
    obs: Observability | None = None,
) -> dict[str, float]:
    """*Crowd-task payment*: scale all prices (budgets scale with them,
    so trends — not absolute spend — are what should persist)."""

    prices = PriceSchedule().scaled(scale)

    def make_platform(seed: int) -> CrowdPlatform:
        return CrowdPlatform(
            domain, recorder=AnswerRecorder(), prices=prices, seed=seed, obs=obs
        )

    return {
        name: _averaged(
            name,
            make_platform,
            domain,
            query,
            b_obj_cents * scale,
            b_prc_cents * scale,
            config,
        )
        for name in algorithms
    }
