"""The Section 5.4 robustness experiments.

Each function perturbs one assumption and re-runs the core comparison,
so the benches can check the paper's claims:

* *Attributes quality* — inflate the irrelevant-answer rate of
  dismantling questions; trends must hold at a somewhat higher
  ``B_prc``.
* *Normalization mechanism* — run with imperfect or disabled synonym
  merging; same expectation.
* *Answer's correlation parameter* — vary the ``E[rho] ~ 0.5`` constant
  of expression 5; results should stay similar.
* *Crowd-task payment* — scale the price schedule; gradients change,
  trends stay.

Plus an ablation (flagged in DESIGN.md) of the optimistic priors used
by the next-dismantle scorer.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.model import Query
from repro.core.online import OnlineEvaluator, query_error
from repro.core.model import PreprocessingPlan
from repro.crowd.normalization import AttributeNormalizer, NormalizationMode
from repro.crowd.platform import CrowdPlatform
from repro.crowd.pricing import PriceSchedule
from repro.crowd.recording import AnswerRecorder
from repro.domains.gaussian import GaussianDomain
from repro.errors import PlanningError
from repro.experiments.config import ExperimentConfig, algorithm

import numpy as np


def _run_on_platform(
    name: str,
    platform: CrowdPlatform,
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
) -> float:
    plans = algorithm(name)(
        platform, query, b_obj_cents, b_prc_cents, config.make_params()
    )
    if isinstance(plans, PreprocessingPlan):
        plans = [plans]
    evaluator = OnlineEvaluator(platform.fork(), plans)
    object_ids = range(min(config.eval_objects, domain.n_objects()))
    estimates = evaluator.evaluate(object_ids)
    return query_error(domain, estimates, object_ids, query)


def _averaged(
    name: str,
    make_platform,
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
) -> float:
    errors = []
    for seed in range(config.repetitions):
        try:
            errors.append(
                _run_on_platform(
                    name,
                    make_platform(seed),
                    domain,
                    query,
                    b_obj_cents,
                    b_prc_cents,
                    config,
                )
            )
        except PlanningError:
            continue
    return float(np.mean(errors)) if errors else float("inf")


def with_degraded_taxonomy(
    algorithms: Sequence[str],
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
    extra_irrelevant: float = 0.3,
) -> dict[str, float]:
    """*Attributes quality*: more irrelevant dismantling answers."""
    degraded = domain.with_taxonomy(
        domain.spec.taxonomy.with_extra_irrelevant(extra_irrelevant)
    )

    def make_platform(seed: int) -> CrowdPlatform:
        return CrowdPlatform(degraded, recorder=AnswerRecorder(), seed=seed)

    return {
        name: _averaged(
            name, make_platform, degraded, query, b_obj_cents, b_prc_cents, config
        )
        for name in algorithms
    }


def with_normalization_mode(
    algorithms: Sequence[str],
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
    mode: NormalizationMode = NormalizationMode.NONE,
    failure_rate: float = 0.3,
) -> dict[str, float]:
    """*Normalization mechanism*: imperfect or absent synonym merging."""

    def make_platform(seed: int) -> CrowdPlatform:
        return CrowdPlatform(
            domain,
            recorder=AnswerRecorder(),
            normalizer=AttributeNormalizer(
                domain, mode=mode, failure_rate=failure_rate, seed=seed
            ),
            seed=seed,
        )

    return {
        name: _averaged(
            name, make_platform, domain, query, b_obj_cents, b_prc_cents, config
        )
        for name in algorithms
    }


def with_rho_constant(
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
    rho_values: Sequence[float] = (0.3, 0.5, 0.7),
) -> dict[float, float]:
    """*Answer's correlation parameter*: vary the expression-5 prior."""

    def make_platform(seed: int) -> CrowdPlatform:
        return CrowdPlatform(domain, recorder=AnswerRecorder(), seed=seed)

    results = {}
    for rho in rho_values:
        rho_config = config.scaled(
            params_overrides={**config.params_overrides, "rho_constant": rho}
        )
        results[rho] = _averaged(
            "DisQ", make_platform, domain, query, b_obj_cents, b_prc_cents, rho_config
        )
    return results


def with_price_scale(
    algorithms: Sequence[str],
    domain: GaussianDomain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
    scale: float = 2.0,
) -> dict[str, float]:
    """*Crowd-task payment*: scale all prices (budgets scale with them,
    so trends — not absolute spend — are what should persist)."""

    prices = PriceSchedule().scaled(scale)

    def make_platform(seed: int) -> CrowdPlatform:
        return CrowdPlatform(
            domain, recorder=AnswerRecorder(), prices=prices, seed=seed
        )

    return {
        name: _averaged(
            name,
            make_platform,
            domain,
            query,
            b_obj_cents * scale,
            b_prc_cents * scale,
            config,
        )
        for name in algorithms
    }
