"""Running algorithms in equivalent settings.

The paper recorded all crowd answers and replayed them so different
algorithms faced identical data.  :func:`run_algorithm` does the same:
all algorithms of one repetition share an
:class:`~repro.crowd.recording.AnswerRecorder`, and each gets a fresh
platform fork (cursors reset) so it sees the same answer streams.
:func:`run_averaged` repeats over seeds and averages, as the paper's
30-run averages do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.experiments.parallel import ParallelConfig

from repro.core.model import PreprocessingPlan, Query
from repro.core.online import OnlineEvaluator, default_weights, query_error
from repro.crowd.platform import CrowdPlatform
from repro.crowd.recording import AnswerRecorder
from repro.domains.base import Domain
from repro.errors import ConfigurationError, PlanningError
from repro.experiments.config import ExperimentConfig, algorithm
from repro.obs import NULL_OBS, Observability


def dump_recorders(recorders: list[AnswerRecorder]) -> list[dict]:
    """JSON-serialisable snapshots of per-repetition recorders.

    The sweep checkpoint (:class:`~repro.experiments.sweeps.
    SweepCheckpoint`) persists these after every completed cell so a
    resumed sweep replays the exact answers the interrupted one bought.
    """
    return [recorder.to_dict() for recorder in recorders]


def restore_recorders(
    recorders: list[AnswerRecorder], payloads: list[dict]
) -> None:
    """Restore :func:`dump_recorders` output onto fresh recorders."""
    if len(recorders) != len(payloads):
        raise ConfigurationError(
            f"checkpoint holds {len(payloads)} repetition recorders, "
            f"this sweep needs {len(recorders)} — repetitions changed?"
        )
    for recorder, payload in zip(recorders, payloads):
        recorder.restore(payload)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one algorithm run.

    Attributes
    ----------
    error:
        Weighted query error over the evaluation objects.
    plans:
        The preprocessing plan(s) the offline phase produced.
    preprocessing_cost:
        Offline cents actually spent.
    online_cost_per_object:
        Online cents per database object under the plan.
    """

    error: float
    plans: tuple[PreprocessingPlan, ...]
    preprocessing_cost: float
    online_cost_per_object: float


def make_query(domain: Domain, targets: tuple[str, ...]) -> Query:
    """A query over ``targets`` with the paper's ``1/Var`` weights."""
    return Query(targets=targets, weights=default_weights(domain, targets))


def run_algorithm(
    name: str,
    domain: Domain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
    seed: int,
    recorder: AnswerRecorder | None = None,
    obs: Observability | None = None,
) -> RunResult:
    """Run one algorithm once and measure its online query error.

    ``obs`` instruments the run (phase spans from the planner, crowd
    counters from the platform, online-phase skips); the default no-op
    bundle leaves the run byte-identical to an uninstrumented one.
    """
    obs = obs if obs is not None else NULL_OBS
    platform = CrowdPlatform(
        domain, recorder=recorder if recorder is not None else AnswerRecorder(),
        seed=seed, obs=obs,
    )
    plans = algorithm(name)(
        platform, query, b_obj_cents, b_prc_cents, config.make_params()
    )
    if isinstance(plans, PreprocessingPlan):
        plans = [plans]
    evaluator = OnlineEvaluator(platform.fork(), plans)
    object_ids = range(min(config.eval_objects, domain.n_objects()))
    with obs.tracer.span("online", algorithm=name):
        estimates = evaluator.evaluate(object_ids)
    error = query_error(domain, estimates, object_ids, query)
    return RunResult(
        error=error,
        plans=tuple(plans),
        preprocessing_cost=sum(plan.preprocessing_cost for plan in plans),
        online_cost_per_object=evaluator.per_object_cost(),
    )


def run_averaged(
    name: str,
    domain: Domain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
    recorders: list[AnswerRecorder] | None = None,
    parallel: "ParallelConfig | None" = None,
    obs: Observability | None = None,
) -> float:
    """Mean query error over ``config.repetitions`` independent runs.

    Repetition ``r`` runs with seed ``config.base_seed + r``, so two
    experiments only share crowd randomness when they share a
    ``base_seed``.  Pass ``recorders`` (one per repetition) to compare
    several algorithms on the *same* crowd answers — the paper's
    methodology.  Runs whose preprocessing budget cannot even buy the
    example pools are skipped (the paper never plots such underfunded
    points); if all repetitions are infeasible the result is ``inf``.

    With a :class:`~repro.experiments.parallel.ParallelConfig` and no
    caller-shared ``recorders``, repetitions fan out across worker
    processes with bit-identical results (each repetition is
    independent).  Shared recorders force the serial path: their
    mutation order is part of the replay semantics, and sweep-level
    parallelism (see :mod:`~repro.experiments.parallel`) handles that
    case instead.
    """
    if parallel is not None and recorders is None:
        from repro.experiments.parallel import run_averaged_parallel

        return run_averaged_parallel(
            name, domain, query, b_obj_cents, b_prc_cents, config, parallel,
            obs=obs,
        )
    obs = obs if obs is not None else NULL_OBS
    errors: list[float] = []
    for repetition in range(config.repetitions):
        recorder = recorders[repetition] if recorders else None
        try:
            result = run_algorithm(
                name,
                domain,
                query,
                b_obj_cents,
                b_prc_cents,
                config,
                seed=config.base_seed + repetition,
                recorder=recorder,
                obs=obs,
            )
        except PlanningError:
            obs.metrics.inc("runs.infeasible")
            continue
        obs.metrics.inc("runs.completed")
        errors.append(result.error)
    if not errors:
        return float("inf")
    return float(np.mean(errors))
