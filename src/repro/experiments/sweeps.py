"""Budget sweeps and their inversion.

These produce the data behind the paper's line plots:

* Figures 1(a-c), 3(a), 4(a): error versus the preprocessing budget
  ``B_prc`` at a fixed per-object budget;
* Figures 1(d-f), 3(b), 4(b): error versus the per-object budget
  ``B_obj`` at a fixed preprocessing budget;
* Figure 2: the ``B_obj`` needed by each algorithm to reach given
  error targets (inversion of a ``B_obj`` sweep).

Both sweep functions accept a :class:`~repro.experiments.parallel.
ParallelConfig`: repetitions then fan out across worker processes (each
replaying its full point/algorithm grid serially against its own
recorder), producing results bit-identical to the serial nested loops
— see :mod:`repro.experiments.parallel` for why that is the only
parallel axis compatible with the shared-recorder replay semantics.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.core.model import Query
from repro.crowd.recording import AnswerRecorder
from repro.domains.base import Domain
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_averaged

if TYPE_CHECKING:
    from repro.experiments.parallel import ParallelConfig
    from repro.obs import Observability

#: A sweep result: algorithm -> list of (budget, mean error) points.
SweepSeries = dict[str, list[tuple[float, float]]]


def _shared_recorders(config: ExperimentConfig) -> list[AnswerRecorder]:
    """One recorder per repetition, shared by every algorithm/point.

    Sharing across sweep points as well (not only algorithms) mirrors
    the paper's reuse of previously collected answers and keeps curves
    smooth: a larger budget strictly extends the smaller budget's data.
    """
    return [AnswerRecorder() for _ in range(config.repetitions)]


def _parallel_series(
    algorithms: Sequence[str],
    domain: Domain,
    query: Query,
    points: list[tuple[float, float]],
    axis_values: Sequence[float],
    config: ExperimentConfig,
    parallel: "ParallelConfig",
    obs: "Observability | None" = None,
) -> SweepSeries:
    """Run the grid through the parallel engine and shape the series."""
    from repro.experiments.parallel import run_grid

    merged = run_grid(
        algorithms, domain, query, points, config, parallel, obs=obs
    )
    return {
        name: [
            (axis_value, merged[(index, name)])
            for index, axis_value in enumerate(axis_values)
        ]
        for name in algorithms
    }


def sweep_b_prc(
    algorithms: Sequence[str],
    domain: Domain,
    query: Query,
    b_obj_cents: float,
    b_prc_values: Sequence[float],
    config: ExperimentConfig,
    parallel: "ParallelConfig | None" = None,
    obs: "Observability | None" = None,
) -> SweepSeries:
    """Error versus preprocessing budget at fixed ``B_obj``."""
    if parallel is not None:
        points = [(b_obj_cents, b_prc) for b_prc in b_prc_values]
        return _parallel_series(
            algorithms, domain, query, points, b_prc_values, config, parallel,
            obs=obs,
        )
    recorders = _shared_recorders(config)
    series: SweepSeries = {name: [] for name in algorithms}
    for b_prc in b_prc_values:
        for name in algorithms:
            error = run_averaged(
                name, domain, query, b_obj_cents, b_prc, config, recorders,
                obs=obs,
            )
            series[name].append((b_prc, error))
    return series


def sweep_b_obj(
    algorithms: Sequence[str],
    domain: Domain,
    query: Query,
    b_obj_values: Sequence[float],
    b_prc_cents: float,
    config: ExperimentConfig,
    parallel: "ParallelConfig | None" = None,
    obs: "Observability | None" = None,
) -> SweepSeries:
    """Error versus per-object budget at fixed ``B_prc``."""
    if parallel is not None:
        points = [(b_obj, b_prc_cents) for b_obj in b_obj_values]
        return _parallel_series(
            algorithms, domain, query, points, b_obj_values, config, parallel,
            obs=obs,
        )
    recorders = _shared_recorders(config)
    series: SweepSeries = {name: [] for name in algorithms}
    for b_obj in b_obj_values:
        for name in algorithms:
            error = run_averaged(
                name, domain, query, b_obj, b_prc_cents, config, recorders,
                obs=obs,
            )
            series[name].append((b_obj, error))
    return series


def required_budget(
    series: list[tuple[float, float]], target_error: float
) -> float:
    """Smallest swept budget whose error is at or below ``target_error``.

    This is how Figure 2 reads off "the B_obj necessary for achieving a
    target error" from a ``B_obj`` sweep.  Returns ``inf`` when the
    target is never reached within the sweep.
    """
    feasible = [budget for budget, error in series if error <= target_error]
    return min(feasible) if feasible else math.inf
