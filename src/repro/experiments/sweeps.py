"""Budget sweeps and their inversion.

These produce the data behind the paper's line plots:

* Figures 1(a-c), 3(a), 4(a): error versus the preprocessing budget
  ``B_prc`` at a fixed per-object budget;
* Figures 1(d-f), 3(b), 4(b): error versus the per-object budget
  ``B_obj`` at a fixed preprocessing budget;
* Figure 2: the ``B_obj`` needed by each algorithm to reach given
  error targets (inversion of a ``B_obj`` sweep).

Both sweep functions accept a :class:`~repro.experiments.parallel.
ParallelConfig`: repetitions then fan out across worker processes (each
replaying its full point/algorithm grid serially against its own
recorder), producing results bit-identical to the serial nested loops
— see :mod:`repro.experiments.parallel` for why that is the only
parallel axis compatible with the shared-recorder replay semantics.
"""

from __future__ import annotations

import json
import math
from collections.abc import Sequence
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.model import Query
from repro.crowd.recording import AnswerRecorder
from repro.domains.base import Domain
from repro.errors import CheckpointError, ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    dump_recorders,
    restore_recorders,
    run_averaged,
)

if TYPE_CHECKING:
    from repro.experiments.parallel import ParallelConfig
    from repro.obs import Observability

#: A sweep result: algorithm -> list of (budget, mean error) points.
SweepSeries = dict[str, list[tuple[float, float]]]

#: Bumped whenever the sweep-checkpoint layout changes.
SWEEP_CHECKPOINT_VERSION = 1


class SweepCheckpoint:
    """Cell-level resume state for a serial budget sweep.

    A sweep is a grid of (axis value, algorithm) cells over shared
    per-repetition recorders.  After each completed cell the checkpoint
    atomically persists the cell's mean error plus every recorder's
    full answer tape; a resumed sweep restores the recorders, skips the
    finished cells, and — because later cells replay earlier cells'
    answers from the recorders — produces the identical series a never-
    interrupted sweep would, without re-buying a single answer.
    """

    def __init__(self, directory: str | Path, axis: str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / f"{axis}.sweep.json"
        self._done: dict[str, float] = {}

    @staticmethod
    def cell_key(name: str, axis_value: float) -> str:
        return f"{name}@{axis_value!r}"

    def resume_into(self, recorders: list[AnswerRecorder]) -> dict[str, float]:
        """Load saved state, restoring ``recorders``; returns done cells.

        Missing file means nothing to resume (empty dict).  A version
        or repetition-count mismatch raises
        :class:`~repro.errors.CheckpointError` — silently mixing
        incompatible answer tapes would corrupt the series.
        """
        if not self.path.exists():
            return {}
        try:
            payload = json.loads(self.path.read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"unreadable sweep checkpoint {self.path}: {exc}"
            ) from exc
        if payload.get("version") != SWEEP_CHECKPOINT_VERSION:
            raise CheckpointError(
                f"sweep checkpoint {self.path} has version "
                f"{payload.get('version')!r}, expected {SWEEP_CHECKPOINT_VERSION}"
            )
        try:
            restore_recorders(recorders, payload["recorders"])
        except ConfigurationError as exc:
            raise CheckpointError(str(exc)) from exc
        self._done = {
            str(key): float(value) for key, value in payload["done"].items()
        }
        return dict(self._done)

    def mark_done(
        self, key: str, error: float, recorders: list[AnswerRecorder]
    ) -> None:
        """Record one finished cell and persist atomically."""
        from repro.durability.checkpoint import atomic_write_text

        self._done[key] = float(error)
        payload = {
            "version": SWEEP_CHECKPOINT_VERSION,
            "done": self._done,
            "recorders": dump_recorders(recorders),
        }
        # allow_nan keeps math.inf (all-infeasible cells) round-trippable.
        atomic_write_text(self.path, json.dumps(payload, sort_keys=True))


def _shared_recorders(config: ExperimentConfig) -> list[AnswerRecorder]:
    """One recorder per repetition, shared by every algorithm/point.

    Sharing across sweep points as well (not only algorithms) mirrors
    the paper's reuse of previously collected answers and keeps curves
    smooth: a larger budget strictly extends the smaller budget's data.
    """
    return [AnswerRecorder() for _ in range(config.repetitions)]


def _parallel_series(
    algorithms: Sequence[str],
    domain: Domain,
    query: Query,
    points: list[tuple[float, float]],
    axis_values: Sequence[float],
    config: ExperimentConfig,
    parallel: "ParallelConfig",
    obs: "Observability | None" = None,
    cache_dir: "str | Path | None" = None,
    resume: bool = False,
) -> SweepSeries:
    """Run the grid through the parallel engine and shape the series."""
    from repro.experiments.parallel import run_grid

    merged = run_grid(
        algorithms, domain, query, points, config, parallel, obs=obs,
        cache_dir=cache_dir, resume=resume,
    )
    return {
        name: [
            (axis_value, merged[(index, name)])
            for index, axis_value in enumerate(axis_values)
        ]
        for name in algorithms
    }


def _serial_sweep(
    algorithms: Sequence[str],
    domain: Domain,
    query: Query,
    cells: list[tuple[float, float, float]],
    config: ExperimentConfig,
    obs: "Observability | None",
    axis: str,
    checkpoint_dir: str | Path | None,
    resume: bool,
) -> SweepSeries:
    """The shared serial sweep loop over ``(axis_value, b_obj, b_prc)``.

    With ``checkpoint_dir`` each finished cell is persisted (error +
    recorder tapes); with ``resume`` previously finished cells are
    skipped and their errors read back, on recorders restored to the
    exact post-cell state — the resumed series is identical to an
    uninterrupted one.
    """
    recorders = _shared_recorders(config)
    checkpoint = (
        SweepCheckpoint(checkpoint_dir, axis)
        if checkpoint_dir is not None
        else None
    )
    done = (
        checkpoint.resume_into(recorders)
        if checkpoint is not None and resume
        else {}
    )
    series: SweepSeries = {name: [] for name in algorithms}
    for axis_value, b_obj, b_prc in cells:
        for name in algorithms:
            key = SweepCheckpoint.cell_key(name, axis_value)
            if key in done:
                error = done[key]
            else:
                error = run_averaged(
                    name, domain, query, b_obj, b_prc, config, recorders,
                    obs=obs,
                )
                if checkpoint is not None:
                    checkpoint.mark_done(key, error, recorders)
            series[name].append((axis_value, error))
    return series


def sweep_b_prc(
    algorithms: Sequence[str],
    domain: Domain,
    query: Query,
    b_obj_cents: float,
    b_prc_values: Sequence[float],
    config: ExperimentConfig,
    parallel: "ParallelConfig | None" = None,
    obs: "Observability | None" = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
) -> SweepSeries:
    """Error versus preprocessing budget at fixed ``B_obj``."""
    if parallel is not None:
        points = [(b_obj_cents, b_prc) for b_prc in b_prc_values]
        return _parallel_series(
            algorithms, domain, query, points, b_prc_values, config, parallel,
            obs=obs, cache_dir=checkpoint_dir, resume=resume,
        )
    cells = [(b_prc, b_obj_cents, b_prc) for b_prc in b_prc_values]
    return _serial_sweep(
        algorithms, domain, query, cells, config, obs,
        "b_prc", checkpoint_dir, resume,
    )


def sweep_b_obj(
    algorithms: Sequence[str],
    domain: Domain,
    query: Query,
    b_obj_values: Sequence[float],
    b_prc_cents: float,
    config: ExperimentConfig,
    parallel: "ParallelConfig | None" = None,
    obs: "Observability | None" = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
) -> SweepSeries:
    """Error versus per-object budget at fixed ``B_prc``."""
    if parallel is not None:
        points = [(b_obj, b_prc_cents) for b_obj in b_obj_values]
        return _parallel_series(
            algorithms, domain, query, points, b_obj_values, config, parallel,
            obs=obs, cache_dir=checkpoint_dir, resume=resume,
        )
    cells = [(b_obj, b_obj, b_prc_cents) for b_obj in b_obj_values]
    return _serial_sweep(
        algorithms, domain, query, cells, config, obs,
        "b_obj", checkpoint_dir, resume,
    )


def required_budget(
    series: list[tuple[float, float]], target_error: float
) -> float:
    """Smallest swept budget whose error is at or below ``target_error``.

    This is how Figure 2 reads off "the B_obj necessary for achieving a
    target error" from a ``B_obj`` sweep.  Returns ``inf`` when the
    target is never reached within the sweep.
    """
    feasible = [budget for budget, error in series if error <= target_error]
    return min(feasible) if feasible else math.inf
