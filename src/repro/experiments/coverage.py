"""Gold-standard coverage of discovered attributes (Section 5.3.1).

The paper measured how much of an expert-provided attribute set the
crowd dismantling process discovers, versus a naive variant that only
dismantles the attributes explicitly in the query.  Reported result:
over 80% coverage for DisQ, under 50% for the naive variant, across
four domains (pictures, recipes, house prices, laptop prices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.domains.base import Domain
from repro.errors import ConfigurationError, PlanningError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import make_query, run_algorithm


@dataclass(frozen=True)
class CoverageResult:
    """Coverage of one (domain, target) pair.

    Attributes
    ----------
    coverage_disq / coverage_naive:
        Mean fraction of the gold-standard set discovered by full
        dismantling versus query-attributes-only dismantling, per run.
    discovered_disq / discovered_naive:
        Union of attributes discovered across repetitions.
    gold:
        The gold-standard attribute set itself.
    """

    domain: str
    target: str
    coverage_disq: float
    coverage_naive: float
    discovered_disq: frozenset[str]
    discovered_naive: frozenset[str]
    gold: frozenset[str]

    @property
    def union_coverage_disq(self) -> float:
        """Coverage of the union of discoveries across repetitions."""
        return len(self.discovered_disq & self.gold) / len(self.gold)

    @property
    def union_coverage_naive(self) -> float:
        """Union coverage of the query-attributes-only variant."""
        return len(self.discovered_naive & self.gold) / len(self.gold)


def _coverage(discovered: frozenset[str], gold: frozenset[str]) -> float:
    if not gold:
        raise ConfigurationError("gold standard set is empty")
    return len(discovered & gold) / len(gold)


def coverage_experiment(
    domain: Domain,
    target: str,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
) -> CoverageResult:
    """Measure gold-standard coverage for one query attribute.

    Both variants run the full planner (so discovery follows the real
    expression-8 scoring and budget management); coverage counts the
    attributes present in the final plan, excluding the target itself.
    """
    gold = domain.gold_standard(target)
    query = make_query(domain, (target,))
    per_run_disq: list[float] = []
    per_run_naive: list[float] = []
    all_disq: set[str] = set()
    all_naive: set[str] = set()
    for seed in range(config.repetitions):
        try:
            disq = run_algorithm(
                "DisQ", domain, query, b_obj_cents, b_prc_cents, config, seed
            )
            naive = run_algorithm(
                "OnlyQueryAttributes",
                domain,
                query,
                b_obj_cents,
                b_prc_cents,
                config,
                seed,
            )
        except PlanningError:
            continue
        found_disq = frozenset(disq.plans[0].attributes) - {target}
        found_naive = frozenset(naive.plans[0].attributes) - {target}
        per_run_disq.append(_coverage(found_disq, gold))
        per_run_naive.append(_coverage(found_naive, gold))
        all_disq |= found_disq
        all_naive |= found_naive
    if not per_run_disq:
        raise PlanningError(
            "coverage experiment infeasible: preprocessing budget too small"
        )
    return CoverageResult(
        domain=domain.name,
        target=target,
        coverage_disq=float(np.mean(per_run_disq)),
        coverage_naive=float(np.mean(per_run_naive)),
        discovered_disq=frozenset(all_disq),
        discovered_naive=frozenset(all_naive),
        gold=gold,
    )
