"""Parallel experiment execution with serial-identical results.

The paper's methodology shares one :class:`~repro.crowd.recording.
AnswerRecorder` per repetition across every algorithm and every sweep
point, so the crowd answers any run sees depend on the *order* in which
earlier runs over the same recorder asked their questions.  That makes
the (point, algorithm) grid inherently sequential **within** one
repetition — but repetitions never share a recorder, a worker pool, or
a seed, so they are embarrassingly parallel.

This module therefore fans *repetitions* across a
:class:`~concurrent.futures.ProcessPoolExecutor`: each worker process
replays its repetition's full (point, algorithm) grid serially, in
exactly the order the serial sweep would have used, against its own
fresh recorder and ``base_seed + repetition`` seed.  Merging simply
averages per-(point, algorithm) errors in repetition order, which is
the identical float reduction the serial path performs — results are
bit-identical to serial execution by construction (asserted in
``tests/integration/test_parallel_experiments.py`` and the perf
harness).
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.model import Query
from repro.crowd.recording import AnswerRecorder
from repro.domains.base import Domain
from repro.errors import PlanningError
from repro.experiments.config import ExperimentConfig
from repro.obs import NULL_OBS, Observability

#: One sweep grid point: ``(b_obj_cents, b_prc_cents)``.
GridPoint = tuple[float, float]


@dataclass(frozen=True)
class ParallelConfig:
    """How to fan experiment repetitions across worker processes.

    Attributes
    ----------
    max_workers:
        Upper bound on worker processes.  ``0`` means "one per CPU";
        the effective pool never exceeds the number of repetitions.
        A resolved value of 1 short-circuits to in-process execution
        (no executor, no pickling) with identical results.
    """

    max_workers: int = 0

    def resolve(self, n_tasks: int) -> int:
        """Effective worker count for ``n_tasks`` parallel tasks."""
        limit = self.max_workers if self.max_workers > 0 else (os.cpu_count() or 1)
        return max(1, min(limit, n_tasks))


def _repetition_grid(
    args: tuple[
        Sequence[str],
        Domain,
        Query,
        Sequence[GridPoint],
        ExperimentConfig,
        int,
        bool,
    ],
) -> tuple[list[list[float | None]], dict | None]:
    """Worker: one repetition's full grid, serially, on a fresh recorder.

    Returns ``(errors, metrics_payload)`` where
    ``errors[point_index][algorithm_index]`` is ``None`` where
    preprocessing was infeasible (the serial path's skipped runs) and
    ``metrics_payload`` is the repetition's serialized
    :class:`~repro.obs.metrics.MetricsRegistry` when instrumentation
    was requested (``None`` otherwise).  Module-level so it pickles for
    the process pool.
    """
    # Imported lazily so worker processes pay the import once, and to
    # keep this module import-light for the executor bootstrap.
    from repro.experiments.runner import run_algorithm

    names, domain, query, points, config, repetition, instrument = args
    obs = Observability.collecting() if instrument else NULL_OBS
    recorder = AnswerRecorder()
    errors: list[list[float | None]] = []
    for b_obj, b_prc in points:
        row: list[float | None] = []
        for name in names:
            try:
                result = run_algorithm(
                    name,
                    domain,
                    query,
                    b_obj,
                    b_prc,
                    config,
                    seed=config.base_seed + repetition,
                    recorder=recorder,
                    obs=obs,
                )
                row.append(result.error)
                obs.metrics.inc("runs.completed")
            except PlanningError:
                row.append(None)
                obs.metrics.inc("runs.infeasible")
        errors.append(row)
    return errors, (obs.metrics.to_dict() if instrument else None)


def _repetition_cache_path(cache_dir: Path, repetition: int) -> Path:
    return cache_dir / f"rep-{repetition}.grid.json"


def _load_cached_repetition(
    cache_dir: Path, repetition: int
) -> tuple[list[list[float | None]], dict | None] | None:
    """A cached repetition outcome, or ``None`` if absent/unreadable.

    An unreadable cache file (torn write from a crash — the writes are
    atomic, so this is belt-and-braces) is treated as missing: the
    repetition simply reruns, which is always safe because repetitions
    are deterministic and independent.
    """
    path = _repetition_cache_path(cache_dir, repetition)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
        return payload["errors"], payload.get("metrics")
    except (json.JSONDecodeError, KeyError, TypeError):
        return None


def _store_cached_repetition(
    cache_dir: Path,
    repetition: int,
    outcome: tuple[list[list[float | None]], dict | None],
) -> None:
    from repro.durability.checkpoint import atomic_write_text

    errors, metrics = outcome
    atomic_write_text(
        _repetition_cache_path(cache_dir, repetition),
        json.dumps({"errors": errors, "metrics": metrics}, sort_keys=True),
    )


def _merge_errors(per_repetition: list[float | None]) -> float:
    """Average one cell's repetition errors exactly as the serial path.

    Infeasible repetitions are skipped; all-infeasible cells are
    ``inf`` (the paper never plots underfunded points).
    """
    errors = [error for error in per_repetition if error is not None]
    if not errors:
        return float("inf")
    return float(np.mean(errors))


def run_grid(
    algorithms: Sequence[str],
    domain: Domain,
    query: Query,
    points: Sequence[GridPoint],
    config: ExperimentConfig,
    parallel: ParallelConfig | None = None,
    obs: Observability | None = None,
    cache_dir: str | Path | None = None,
    resume: bool = False,
) -> dict[tuple[int, str], float]:
    """Mean error per (point index, algorithm) over all repetitions.

    Repetitions run across processes per ``parallel`` (in-process when
    ``parallel`` is ``None`` or resolves to one worker); each keeps the
    paper's shared-recorder replay semantics internally, so the merged
    result is bit-identical to the serial nested loops.

    With a recording ``obs``, each worker collects its repetition's
    counters into a fresh registry and ships it back for merging (in
    repetition order).  Error results are unaffected; integer counters
    equal what a serial instrumented sweep records, while float spend
    totals may differ from serial in the last ulp (different addition
    order).  Worker-side tracer spans are not shipped back — phase
    timing across processes is not meaningfully mergeable.

    ``cache_dir`` persists each repetition's outcome atomically as it
    completes; with ``resume`` cached repetitions are loaded instead of
    rerun, so an interrupted grid only pays for the repetitions it
    never finished.  Repetitions are deterministic, so cached and rerun
    outcomes are interchangeable.
    """
    instrument = obs is not None and obs.metrics.enabled
    cache = Path(cache_dir) if cache_dir is not None else None
    if cache is not None:
        cache.mkdir(parents=True, exist_ok=True)
    tasks = [
        (
            tuple(algorithms),
            domain,
            query,
            tuple(points),
            config,
            repetition,
            instrument,
        )
        for repetition in range(config.repetitions)
    ]
    cached: dict[int, tuple[list[list[float | None]], dict | None]] = {}
    if cache is not None and resume:
        for repetition in range(config.repetitions):
            loaded = _load_cached_repetition(cache, repetition)
            if loaded is not None:
                cached[repetition] = loaded
    pending = [task for task in tasks if task[5] not in cached]
    workers = (parallel or ParallelConfig(max_workers=1)).resolve(
        max(1, len(pending))
    )
    if workers <= 1:
        fresh = [_repetition_grid(task) for task in pending]
    else:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            fresh = list(executor.map(_repetition_grid, pending))
    for task, outcome in zip(pending, fresh):
        cached[task[5]] = outcome
        if cache is not None:
            _store_cached_repetition(cache, task[5], outcome)
    # Merge in repetition order regardless of cached/fresh provenance.
    outcomes = [cached[repetition] for repetition in range(config.repetitions)]
    per_repetition = [errors for errors, _ in outcomes]
    if instrument:
        for _, payload in outcomes:  # repetition order, deterministic
            if payload is not None:
                obs.metrics.merge(payload)
    merged: dict[tuple[int, str], float] = {}
    for point_index in range(len(points)):
        for algorithm_index, name in enumerate(algorithms):
            merged[(point_index, name)] = _merge_errors(
                [grid[point_index][algorithm_index] for grid in per_repetition]
            )
    return merged


def _repetition_single(
    args: tuple[str, Domain, Query, float, float, ExperimentConfig, int, bool],
) -> tuple[float | None, dict | None]:
    """Worker: one repetition of one algorithm on a fresh recorder.

    Returns ``(error, metrics_payload)``; the payload mirrors
    :func:`_repetition_grid`.
    """
    from repro.experiments.runner import run_algorithm

    name, domain, query, b_obj, b_prc, config, repetition, instrument = args
    obs = Observability.collecting() if instrument else NULL_OBS
    try:
        error = run_algorithm(
            name,
            domain,
            query,
            b_obj,
            b_prc,
            config,
            seed=config.base_seed + repetition,
            recorder=None,
            obs=obs,
        ).error
        obs.metrics.inc("runs.completed")
    except PlanningError:
        error = None
        obs.metrics.inc("runs.infeasible")
    return error, (obs.metrics.to_dict() if instrument else None)


def run_averaged_parallel(
    name: str,
    domain: Domain,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    config: ExperimentConfig,
    parallel: ParallelConfig,
    obs: Observability | None = None,
) -> float:
    """Parallel :func:`~repro.experiments.runner.run_averaged`.

    Only valid for independent repetitions (no caller-shared
    recorders); each repetition gets a fresh recorder exactly as the
    serial path does when no recorders are passed.  Worker metrics are
    merged back into ``obs`` in repetition order (see :func:`run_grid`).
    """
    instrument = obs is not None and obs.metrics.enabled
    tasks = [
        (
            name,
            domain,
            query,
            b_obj_cents,
            b_prc_cents,
            config,
            repetition,
            instrument,
        )
        for repetition in range(config.repetitions)
    ]
    workers = parallel.resolve(len(tasks))
    if workers <= 1:
        outcomes = [_repetition_single(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            outcomes = list(executor.map(_repetition_single, tasks))
    if instrument:
        for _, payload in outcomes:
            if payload is not None:
                obs.metrics.merge(payload)
    return _merge_errors([error for error, _ in outcomes])
