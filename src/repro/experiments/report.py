"""ASCII rendering of experiment outputs.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.experiments.sweeps import SweepSeries


def _format_value(value: float, precision: int = 4) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a simple aligned ASCII table."""
    formatted = [
        [
            _format_value(cell, precision) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in formatted))
        if formatted
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: SweepSeries,
    x_label: str,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a budget sweep as a table: one row per budget value."""
    algorithms = list(series)
    budgets = [x for x, _ in next(iter(series.values()))] if series else []
    rows = []
    for index, budget in enumerate(budgets):
        row: list[object] = [f"{budget:g}"]
        for name in algorithms:
            row.append(series[name][index][1])
        rows.append(row)
    return render_table([x_label, *algorithms], rows, title=title, precision=precision)
