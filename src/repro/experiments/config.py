"""Experiment configuration and the algorithm registry.

The registry maps the paper's algorithm names to factories with the
uniform signature ``(platform, query, b_obj, b_prc, params) -> plan(s)``
so the runner and all sweeps are algorithm-agnostic.

Scaling note: the paper ran with ``N_1 = 200`` examples, 500 objects
and 30 repetitions per point against live CrowdFlower workers.  The
default :class:`ExperimentConfig` here is scaled down (documented in
EXPERIMENTS.md) so a full table/figure regenerates in seconds; pass
``paper_scale()`` for the full-size setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.core.baselines import (
    NaiveAverage,
    make_full_planner,
    make_naive_estimations_planner,
    make_one_connection_planner,
    make_only_query_attributes_planner,
    make_simple_disq_planner,
    run_totally_separated,
)
from repro.core.disq import DisQParams, DisQPlanner
from repro.core.model import PreprocessingPlan, Query
from repro.crowd.platform import CrowdPlatform
from repro.errors import ConfigurationError

#: Uniform algorithm factory signature.
AlgorithmFactory = Callable[
    [CrowdPlatform, Query, float, float, DisQParams],
    "PreprocessingPlan | list[PreprocessingPlan]",
]


def _run_disq(platform, query, b_obj, b_prc, params):
    return DisQPlanner(platform, query, b_obj, b_prc, params).preprocess()


def _run_simple(platform, query, b_obj, b_prc, params):
    return make_simple_disq_planner(platform, query, b_obj, b_prc, params).preprocess()


def _run_naive(platform, query, b_obj, b_prc, params):
    return NaiveAverage(platform, query, b_obj).preprocess()


def _run_only_query(platform, query, b_obj, b_prc, params):
    return make_only_query_attributes_planner(
        platform, query, b_obj, b_prc, params
    ).preprocess()


def _run_full(platform, query, b_obj, b_prc, params):
    return make_full_planner(platform, query, b_obj, b_prc, params).preprocess()


def _run_one_connection(platform, query, b_obj, b_prc, params):
    return make_one_connection_planner(
        platform, query, b_obj, b_prc, params
    ).preprocess()


def _run_naive_estimations(platform, query, b_obj, b_prc, params):
    return make_naive_estimations_planner(
        platform, query, b_obj, b_prc, params
    ).preprocess()


def _run_totally_separated(platform, query, b_obj, b_prc, params):
    return run_totally_separated(platform, query, b_obj, b_prc, params)


def _run_disq_split(platform, query, b_obj, b_prc, params):
    """DisQ restricted to split per-target example pools (Section 4's
    general case) — the configuration the Figure 4 variants compare to."""
    from repro.core.disq import with_params

    return DisQPlanner(
        platform, query, b_obj, b_prc, with_params(params, example_pooling="split")
    ).preprocess()


#: The paper's algorithm names -> factories.
ALGORITHMS: dict[str, AlgorithmFactory] = {
    "DisQ": _run_disq,
    "SimpleDisQ": _run_simple,
    "NaiveAverage": _run_naive,
    "OnlyQueryAttributes": _run_only_query,
    "Full": _run_full,
    "OneConnection": _run_one_connection,
    "NaiveEstimations": _run_naive_estimations,
    "TotallySeparated": _run_totally_separated,
    "DisQSplit": _run_disq_split,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of one experiment.

    Attributes
    ----------
    n_objects:
        Domain size (paper: 500).
    n1:
        Statistics examples per pool (paper: 200).
    repetitions:
        Runs averaged per point (paper: 30).
    eval_objects:
        Database objects processed by the online phase per run.
    domain_seed:
        Seed of the ground-truth world (fixed across algorithms).
    base_seed:
        Offset added to the repetition index to form each run's crowd
        seed (repetition ``r`` runs with seed ``base_seed + r``).  Two
        experiments with different ``base_seed`` values therefore see
        independent crowds instead of silently reusing seeds
        ``0..repetitions-1``.
    params_overrides:
        Extra :class:`~repro.core.disq.DisQParams` fields merged into
        the parameters built by :meth:`make_params`.
    """

    n_objects: int = 300
    n1: int = 80
    repetitions: int = 3
    eval_objects: int = 80
    domain_seed: int = 1
    base_seed: int = 0
    params_overrides: dict = field(default_factory=dict)

    def make_params(self) -> DisQParams:
        """Planner parameters for this configuration."""
        return DisQParams(n1=self.n1, **self.params_overrides)

    def scaled(self, **changes) -> "ExperimentConfig":
        """Copy with overrides (convenience for benches)."""
        return replace(self, **changes)


def paper_scale() -> ExperimentConfig:
    """The paper's full-size setting (slow: minutes per figure point)."""
    return ExperimentConfig(
        n_objects=500, n1=200, repetitions=30, eval_objects=200
    )


def algorithm(name: str) -> AlgorithmFactory:
    """Look up a registry algorithm, with a friendly error."""
    if name not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        )
    return ALGORITHMS[name]
