"""Experiment harness reproducing the paper's Section 5.

* :mod:`~repro.experiments.config` — experiment configuration and the
  algorithm registry;
* :mod:`~repro.experiments.runner` — run one algorithm once/averaged on
  shared recorded crowd answers ("equivalent settings" as in the paper);
* :mod:`~repro.experiments.sweeps` — budget sweeps (Figures 1, 3, 4) and
  error-target inversion (Figure 2);
* :mod:`~repro.experiments.parallel` — process-pool execution of
  repetitions with results bit-identical to serial;
* :mod:`~repro.experiments.coverage` — gold-standard attribute coverage
  (Section 5.3.1);
* :mod:`~repro.experiments.robustness` — the Section 5.4 assumption
  knobs;
* :mod:`~repro.experiments.report` — ASCII rendering of result tables.
"""

from repro.experiments.config import ALGORITHMS, ExperimentConfig
from repro.experiments.parallel import ParallelConfig, run_averaged_parallel, run_grid
from repro.experiments.runner import RunResult, run_algorithm, run_averaged
from repro.experiments.sweeps import (
    required_budget,
    sweep_b_obj,
    sweep_b_prc,
)
from repro.experiments.coverage import coverage_experiment
from repro.experiments.report import render_series, render_table

__all__ = [
    "ALGORITHMS",
    "ExperimentConfig",
    "ParallelConfig",
    "RunResult",
    "coverage_experiment",
    "render_series",
    "render_table",
    "required_budget",
    "run_algorithm",
    "run_averaged",
    "run_averaged_parallel",
    "run_grid",
    "sweep_b_obj",
    "sweep_b_prc",
]
