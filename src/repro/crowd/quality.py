"""Worker quality management: gold questions and runtime quarantine.

The paper assumes "spam filters are employed to avoid malicious
workers" and cites Ipeirotis et al.'s quality-management work on
Mechanical Turk.  Besides the answer-level filters in
:mod:`repro.crowd.spam`, this module provides two mechanisms:

* the classical *gold-question* screen — each worker is probed with
  value questions whose true answers are known, scored by how far
  their answers fall from the truth, and banned when their error rate
  is inconsistent with honest noise (:class:`GoldQuestionScreen` +
  :class:`ScreenedPool`);
* a runtime *circuit breaker* — :class:`WorkerCircuitBreaker` watches
  operational outcomes (timeouts, abandons, malformed or spam-filtered
  answers) per worker and quarantines workers whose fault rate crosses
  a threshold, with half-open re-admission after a cooldown on the
  simulated clock.  The breaker is the online complement to the
  offline gold screen: it needs no ground truth and reacts to faults
  the screen cannot see.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.crowd.pool import WorkerPool
from repro.crowd.worker import Worker
from repro.domains.base import Domain
from repro.errors import ConfigurationError


@dataclass
class ReputationTracker:
    """Per-worker record of gold-question outcomes."""

    correct: dict[int, int] = field(default_factory=dict)
    total: dict[int, int] = field(default_factory=dict)

    def record(self, worker_id: int, passed: bool) -> None:
        """Record one gold-question outcome for a worker."""
        self.total[worker_id] = self.total.get(worker_id, 0) + 1
        if passed:
            self.correct[worker_id] = self.correct.get(worker_id, 0) + 1

    def accuracy(self, worker_id: int) -> float:
        """Fraction of gold questions the worker passed (1.0 if unprobed)."""
        total = self.total.get(worker_id, 0)
        if total == 0:
            return 1.0
        return self.correct.get(worker_id, 0) / total

    def probed(self, worker_id: int) -> int:
        """Number of gold questions the worker has answered."""
        return self.total.get(worker_id, 0)


class GoldQuestionScreen:
    """Probes workers with known-answer questions and scores them.

    A probe *passes* when the worker's answer lies within
    ``tolerance_sigmas`` standard deviations of the truth — using the
    attribute's honest-noise standard deviation, so an honest worker
    passes with high probability while a uniform spammer fails most
    probes on wide-range attributes.

    Parameters
    ----------
    questions_per_worker:
        Gold questions posed to each worker.
    tolerance_sigmas:
        Pass window around the truth, in honest-noise standard
        deviations.
    min_accuracy:
        Workers below this pass rate are banned.
    seed:
        RNG seed for probe-object selection.
    """

    def __init__(
        self,
        questions_per_worker: int = 5,
        tolerance_sigmas: float = 3.0,
        min_accuracy: float = 0.6,
        seed: int = 0,
    ) -> None:
        if questions_per_worker < 1:
            raise ConfigurationError("need at least one gold question per worker")
        if tolerance_sigmas <= 0:
            raise ConfigurationError("tolerance must be positive")
        if not 0.0 < min_accuracy <= 1.0:
            raise ConfigurationError("min_accuracy must be in (0, 1]")
        self.questions_per_worker = questions_per_worker
        self.tolerance_sigmas = tolerance_sigmas
        self.min_accuracy = min_accuracy
        self._rng = np.random.default_rng(seed)

    def probe_worker(
        self, worker: Worker, domain: Domain, attribute: str
    ) -> bool:
        """One gold question: does the worker's answer pass?"""
        object_id = domain.sample_object(self._rng)
        answer = worker.answer_value(domain, object_id, attribute)
        truth = domain.true_value(object_id, attribute)
        noise_sd = float(np.sqrt(domain.difficulty(attribute)))
        if domain.is_binary(attribute):
            # Clipping makes sigma windows unreliable near the borders;
            # a fixed half-unit window separates honest from uniform.
            return abs(answer - truth) <= max(
                0.5, self.tolerance_sigmas * noise_sd
            ) and 0.0 <= answer <= 1.0
        return abs(answer - truth) <= self.tolerance_sigmas * noise_sd

    def screen(
        self, pool: WorkerPool, domain: Domain, attributes: list[str] | None = None
    ) -> ReputationTracker:
        """Probe every worker in the pool and return their reputations.

        Probing costs crowd questions in a real deployment; callers who
        care about accounting should charge
        ``len(pool) * questions_per_worker`` value questions.
        """
        if attributes is None:
            # Prefer numeric attributes: their wide answer ranges make
            # spam detectable in very few probes.
            attributes = [
                name for name in domain.attributes() if not domain.is_binary(name)
            ] or list(domain.attributes())
        tracker = ReputationTracker()
        for worker in pool.workers:
            for probe_index in range(self.questions_per_worker):
                attribute = attributes[probe_index % len(attributes)]
                tracker.record(
                    worker.worker_id, self.probe_worker(worker, domain, attribute)
                )
        return tracker

    def banned(self, tracker: ReputationTracker, worker_id: int) -> bool:
        """Whether a worker's gold-question record bans them."""
        if tracker.probed(worker_id) == 0:
            return False
        return tracker.accuracy(worker_id) < self.min_accuracy


class ScreenedPool:
    """A worker-pool view that only serves non-banned workers.

    Quacks like :class:`~repro.crowd.pool.WorkerPool` (``draw``,
    ``draw_distinct``, ``workers``, ``len``), so it drops into
    :class:`~repro.crowd.platform.CrowdPlatform` unchanged.
    """

    def __init__(
        self,
        pool: WorkerPool,
        tracker: ReputationTracker,
        screen: GoldQuestionScreen,
    ) -> None:
        self._pool = pool
        self._allowed = [
            worker
            for worker in pool.workers
            if not screen.banned(tracker, worker.worker_id)
        ]
        if not self._allowed:
            raise ConfigurationError(
                "screening banned every worker; lower min_accuracy"
            )
        self._rng = np.random.default_rng(0)

    def __len__(self) -> int:
        return len(self._allowed)

    @property
    def workers(self) -> tuple[Worker, ...]:
        """The surviving worker population."""
        return tuple(self._allowed)

    def draw(self) -> Worker:
        """Sample one surviving worker uniformly (with replacement)."""
        return self._allowed[int(self._rng.integers(0, len(self._allowed)))]

    def draw_distinct(self, n: int) -> list[Worker]:
        """Sample ``n`` distinct surviving workers (with fallback)."""
        if n <= len(self._allowed):
            indices = self._rng.choice(len(self._allowed), size=n, replace=False)
        else:
            indices = self._rng.integers(0, len(self._allowed), size=n)
        return [self._allowed[int(i)] for i in indices]

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot (own RNG + the wrapped pool)."""
        return {
            "rng": self._rng.bit_generator.state,
            "pool": self._pool.state_dict(),
        }

    def restore_state(self, payload: dict) -> None:
        """Restore :meth:`state_dict` (the survivor list is rebuilt by
        re-screening with the same seeds, so only RNGs travel here)."""
        self._rng.bit_generator.state = payload["rng"]
        self._pool.restore_state(payload["pool"])


# ----------------------------------------------------------------------
# Runtime quarantine (circuit breaker)
# ----------------------------------------------------------------------


class BreakerState(enum.Enum):
    """Circuit-breaker state of one worker."""

    CLOSED = "closed"        # serving normally
    OPEN = "open"            # quarantined: not served at all
    HALF_OPEN = "half_open"  # probation: served, watched closely


@dataclass
class _WorkerRecord:
    """Sliding fault statistics and breaker state for one worker."""

    state: BreakerState = BreakerState.CLOSED
    outcomes: list[bool] = field(default_factory=list)  # True = fault
    opened_at: float = 0.0
    probation_successes: int = 0
    times_quarantined: int = 0


class WorkerCircuitBreaker:
    """Quarantines workers whose operational fault rate spikes.

    Fault events (timeouts, abandonments, malformed answers, answers
    dropped by the spam filter) are recorded per worker over a sliding
    window.  A worker whose windowed fault rate crosses
    ``fault_threshold`` trips OPEN and stops being served; after
    ``cooldown`` simulated seconds it transitions to HALF_OPEN and is
    re-admitted on probation.  ``probation_successes`` consecutive
    clean interactions close the breaker again; any fault during
    probation re-opens it immediately.

    Parameters
    ----------
    fault_threshold:
        Windowed fault-rate above which a worker is quarantined.
    window:
        Number of recent interactions considered per worker.
    min_observations:
        Interactions required before the threshold is applied (avoids
        quarantining a worker on their first unlucky task).
    cooldown:
        Simulated seconds a worker stays OPEN before probation.
    probation_successes:
        Consecutive clean probation interactions required to close.
    """

    def __init__(
        self,
        fault_threshold: float = 0.5,
        window: int = 20,
        min_observations: int = 5,
        cooldown: float = 300.0,
        probation_successes: int = 3,
    ) -> None:
        if not 0.0 < fault_threshold <= 1.0:
            raise ConfigurationError(
                f"fault_threshold must lie in (0, 1]: {fault_threshold}"
            )
        if window < 1 or min_observations < 1:
            raise ConfigurationError("window and min_observations must be >= 1")
        if min_observations > window:
            raise ConfigurationError("min_observations cannot exceed window")
        if cooldown < 0:
            raise ConfigurationError(f"cooldown must be non-negative: {cooldown}")
        if probation_successes < 1:
            raise ConfigurationError("probation_successes must be >= 1")
        self.fault_threshold = fault_threshold
        self.window = window
        self.min_observations = min_observations
        self.cooldown = cooldown
        self.probation_successes = probation_successes
        self._records: dict[int, _WorkerRecord] = {}
        #: Optional duck-typed metrics sink; every OPEN transition
        #: increments ``crowd.quarantine.trips``.
        self.metrics: object | None = None

    # -- state inspection ------------------------------------------------

    def _record(self, worker_id: int) -> _WorkerRecord:
        if worker_id not in self._records:
            self._records[worker_id] = _WorkerRecord()
        return self._records[worker_id]

    def state(self, worker_id: int, now: float) -> BreakerState:
        """Current breaker state, applying any due OPEN -> HALF_OPEN move."""
        record = self._records.get(worker_id)
        if record is None:
            return BreakerState.CLOSED
        if (
            record.state is BreakerState.OPEN
            and now - record.opened_at >= self.cooldown
        ):
            record.state = BreakerState.HALF_OPEN
            record.probation_successes = 0
        return record.state

    def allows(self, worker_id: int, now: float) -> bool:
        """Whether the worker may be served at simulated time ``now``."""
        return self.state(worker_id, now) is not BreakerState.OPEN

    def fault_rate(self, worker_id: int) -> float:
        """Windowed fault rate of one worker (0.0 if unobserved)."""
        record = self._records.get(worker_id)
        if record is None or not record.outcomes:
            return 0.0
        return sum(record.outcomes) / len(record.outcomes)

    def quarantined(self, now: float) -> tuple[int, ...]:
        """Worker ids currently OPEN (after due probation moves)."""
        return tuple(
            worker_id
            for worker_id in sorted(self._records)
            if self.state(worker_id, now) is BreakerState.OPEN
        )

    def ever_quarantined(self) -> tuple[int, ...]:
        """Worker ids that have ever been quarantined."""
        return tuple(
            worker_id
            for worker_id in sorted(self._records)
            if self._records[worker_id].times_quarantined > 0
        )

    # -- event recording -------------------------------------------------

    def record_outcome(self, worker_id: int, fault: bool, now: float) -> None:
        """Record one interaction outcome and update the breaker."""
        state = self.state(worker_id, now)  # applies due probation moves
        record = self._record(worker_id)
        record.outcomes.append(bool(fault))
        if len(record.outcomes) > self.window:
            del record.outcomes[: len(record.outcomes) - self.window]
        if state is BreakerState.HALF_OPEN:
            if fault:
                self._trip(record, now)
            else:
                record.probation_successes += 1
                if record.probation_successes >= self.probation_successes:
                    record.state = BreakerState.CLOSED
                    record.outcomes.clear()
            return
        if state is BreakerState.CLOSED:
            if (
                len(record.outcomes) >= self.min_observations
                and sum(record.outcomes) / len(record.outcomes)
                >= self.fault_threshold
            ):
                self._trip(record, now)

    def record_fault(self, worker_id: int, now: float) -> None:
        """Shorthand for a faulty interaction."""
        self.record_outcome(worker_id, fault=True, now=now)

    def record_success(self, worker_id: int, now: float) -> None:
        """Shorthand for a clean interaction."""
        self.record_outcome(worker_id, fault=False, now=now)

    def _trip(self, record: _WorkerRecord, now: float) -> None:
        record.state = BreakerState.OPEN
        record.opened_at = now
        record.probation_successes = 0
        record.times_quarantined += 1
        if self.metrics is not None:
            self.metrics.inc("crowd.quarantine.trips")

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of every worker's breaker record."""
        return {
            "records": [
                [
                    worker_id,
                    record.state.value,
                    [bool(outcome) for outcome in record.outcomes],
                    record.opened_at,
                    record.probation_successes,
                    record.times_quarantined,
                ]
                for worker_id, record in sorted(self._records.items())
            ]
        }

    def restore_state(self, payload: dict) -> None:
        """Restore breaker records from :meth:`state_dict` (in place)."""
        records: dict[int, _WorkerRecord] = {}
        for worker_id, state, outcomes, opened_at, successes, trips in payload[
            "records"
        ]:
            records[int(worker_id)] = _WorkerRecord(
                state=BreakerState(state),
                outcomes=[bool(outcome) for outcome in outcomes],
                opened_at=float(opened_at),
                probation_successes=int(successes),
                times_quarantined=int(trips),
            )
        self._records = records
