"""Worker quality management via gold questions.

The paper assumes "spam filters are employed to avoid malicious
workers" and cites Ipeirotis et al.'s quality-management work on
Mechanical Turk.  Besides the answer-level filters in
:mod:`repro.crowd.spam`, this module provides the classical
*gold-question* mechanism: each worker is probed with value questions
whose true answers are known, scored by how far their answers fall from
the truth, and banned when their error rate is inconsistent with honest
noise.  A :class:`ScreenedPool` then serves only surviving workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crowd.pool import WorkerPool
from repro.crowd.worker import Worker
from repro.domains.base import Domain
from repro.errors import ConfigurationError


@dataclass
class ReputationTracker:
    """Per-worker record of gold-question outcomes."""

    correct: dict[int, int] = field(default_factory=dict)
    total: dict[int, int] = field(default_factory=dict)

    def record(self, worker_id: int, passed: bool) -> None:
        """Record one gold-question outcome for a worker."""
        self.total[worker_id] = self.total.get(worker_id, 0) + 1
        if passed:
            self.correct[worker_id] = self.correct.get(worker_id, 0) + 1

    def accuracy(self, worker_id: int) -> float:
        """Fraction of gold questions the worker passed (1.0 if unprobed)."""
        total = self.total.get(worker_id, 0)
        if total == 0:
            return 1.0
        return self.correct.get(worker_id, 0) / total

    def probed(self, worker_id: int) -> int:
        """Number of gold questions the worker has answered."""
        return self.total.get(worker_id, 0)


class GoldQuestionScreen:
    """Probes workers with known-answer questions and scores them.

    A probe *passes* when the worker's answer lies within
    ``tolerance_sigmas`` standard deviations of the truth — using the
    attribute's honest-noise standard deviation, so an honest worker
    passes with high probability while a uniform spammer fails most
    probes on wide-range attributes.

    Parameters
    ----------
    questions_per_worker:
        Gold questions posed to each worker.
    tolerance_sigmas:
        Pass window around the truth, in honest-noise standard
        deviations.
    min_accuracy:
        Workers below this pass rate are banned.
    seed:
        RNG seed for probe-object selection.
    """

    def __init__(
        self,
        questions_per_worker: int = 5,
        tolerance_sigmas: float = 3.0,
        min_accuracy: float = 0.6,
        seed: int = 0,
    ) -> None:
        if questions_per_worker < 1:
            raise ConfigurationError("need at least one gold question per worker")
        if tolerance_sigmas <= 0:
            raise ConfigurationError("tolerance must be positive")
        if not 0.0 < min_accuracy <= 1.0:
            raise ConfigurationError("min_accuracy must be in (0, 1]")
        self.questions_per_worker = questions_per_worker
        self.tolerance_sigmas = tolerance_sigmas
        self.min_accuracy = min_accuracy
        self._rng = np.random.default_rng(seed)

    def probe_worker(
        self, worker: Worker, domain: Domain, attribute: str
    ) -> bool:
        """One gold question: does the worker's answer pass?"""
        object_id = domain.sample_object(self._rng)
        answer = worker.answer_value(domain, object_id, attribute)
        truth = domain.true_value(object_id, attribute)
        noise_sd = float(np.sqrt(domain.difficulty(attribute)))
        if domain.is_binary(attribute):
            # Clipping makes sigma windows unreliable near the borders;
            # a fixed half-unit window separates honest from uniform.
            return abs(answer - truth) <= max(
                0.5, self.tolerance_sigmas * noise_sd
            ) and 0.0 <= answer <= 1.0
        return abs(answer - truth) <= self.tolerance_sigmas * noise_sd

    def screen(
        self, pool: WorkerPool, domain: Domain, attributes: list[str] | None = None
    ) -> ReputationTracker:
        """Probe every worker in the pool and return their reputations.

        Probing costs crowd questions in a real deployment; callers who
        care about accounting should charge
        ``len(pool) * questions_per_worker`` value questions.
        """
        if attributes is None:
            # Prefer numeric attributes: their wide answer ranges make
            # spam detectable in very few probes.
            attributes = [
                name for name in domain.attributes() if not domain.is_binary(name)
            ] or list(domain.attributes())
        tracker = ReputationTracker()
        for worker in pool.workers:
            for probe_index in range(self.questions_per_worker):
                attribute = attributes[probe_index % len(attributes)]
                tracker.record(
                    worker.worker_id, self.probe_worker(worker, domain, attribute)
                )
        return tracker

    def banned(self, tracker: ReputationTracker, worker_id: int) -> bool:
        """Whether a worker's gold-question record bans them."""
        if tracker.probed(worker_id) == 0:
            return False
        return tracker.accuracy(worker_id) < self.min_accuracy


class ScreenedPool:
    """A worker-pool view that only serves non-banned workers.

    Quacks like :class:`~repro.crowd.pool.WorkerPool` (``draw``,
    ``draw_distinct``, ``workers``, ``len``), so it drops into
    :class:`~repro.crowd.platform.CrowdPlatform` unchanged.
    """

    def __init__(
        self,
        pool: WorkerPool,
        tracker: ReputationTracker,
        screen: GoldQuestionScreen,
    ) -> None:
        self._pool = pool
        self._allowed = [
            worker
            for worker in pool.workers
            if not screen.banned(tracker, worker.worker_id)
        ]
        if not self._allowed:
            raise ConfigurationError(
                "screening banned every worker; lower min_accuracy"
            )
        self._rng = np.random.default_rng(0)

    def __len__(self) -> int:
        return len(self._allowed)

    @property
    def workers(self) -> tuple[Worker, ...]:
        """The surviving worker population."""
        return tuple(self._allowed)

    def draw(self) -> Worker:
        """Sample one surviving worker uniformly (with replacement)."""
        return self._allowed[int(self._rng.integers(0, len(self._allowed)))]

    def draw_distinct(self, n: int) -> list[Worker]:
        """Sample ``n`` distinct surviving workers (with fallback)."""
        if n <= len(self._allowed):
            indices = self._rng.choice(len(self._allowed), size=n, replace=False)
        else:
            indices = self._rng.integers(0, len(self._allowed), size=n)
        return [self._allowed[int(i)] for i in indices]
