"""Worker pools.

A :class:`WorkerPool` owns a population of independent workers and
hands out a fresh random worker for each question, matching the paper's
assumption that each answer comes from an independent crowd member.
The pool's composition (fractions of honest / biased / spam workers) is
configurable so experiments can stress the spam filter or study bias.
"""

from __future__ import annotations

import numpy as np

from repro.crowd.worker import (
    BiasedWorker,
    CollusionRingWorker,
    DriftingWorker,
    HonestWorker,
    SleeperWorker,
    SpamWorker,
    Worker,
)
from repro.errors import ConfigurationError

#: Knuth-multiplier mix deriving the collusion ring's shared seed from
#: the pool seed without consuming any pool RNG draws (so enabling a
#: ring leaves every other worker's stream byte-identical).
_RING_SEED_MIX = 0x9E3779B1


class WorkerPool:
    """A population of crowd workers with a sampling policy.

    Parameters
    ----------
    size:
        Number of distinct workers in the population.
    seed:
        Master seed; workers receive derived, independent seeds.
    spam_fraction:
        Fraction of the population that are spam workers.
    biased_fraction:
        Fraction that are systematically biased (honest otherwise).
    reliability:
        Verification-vote correctness probability for honest workers.
    synonym_rate:
        Probability an honest worker phrases a dismantling answer with
        a synonym surface form.
    skill_spread:
        Log-normal sigma of the per-worker skill multiplier (0 disables
        skill heterogeneity).
    fault_spread:
        Log-normal sigma of the per-worker *fault proneness* multiplier
        used by fault injection (0, the default, leaves every worker at
        proneness 1.0 and draws no extra randomness, preserving seeded
        worker streams byte-for-byte).
    colluding_fraction:
        Fraction forming a single collusion ring: every member derives
        the *same* per-(attribute, object) error from one shared ring
        seed, so their errors are perfectly correlated instead of
        averaging out (see
        :class:`~repro.crowd.worker.CollusionRingWorker`).
    drifting_fraction:
        Fraction of honest workers whose noise variance grows along the
        object axis at ``drift_rate`` per object id.
    sleeper_fraction:
        Fraction of sleepers: honest on objects below
        ``sleeper_patience`` (the gold-screened prefix), spam after.
    collusion_bias_scale, drift_rate, sleeper_patience:
        Persona knobs, forwarded to the respective worker types.
    """

    def __init__(
        self,
        size: int = 200,
        seed: int = 0,
        spam_fraction: float = 0.0,
        biased_fraction: float = 0.0,
        reliability: float = 0.8,
        synonym_rate: float = 0.3,
        skill_spread: float = 0.0,
        fault_spread: float = 0.0,
        colluding_fraction: float = 0.0,
        drifting_fraction: float = 0.0,
        sleeper_fraction: float = 0.0,
        collusion_bias_scale: float = 1.0,
        drift_rate: float = 0.02,
        sleeper_patience: int = 50,
    ) -> None:
        if size <= 0:
            raise ConfigurationError(f"pool size must be positive, got {size}")
        fractions = {
            "spam_fraction": spam_fraction,
            "biased_fraction": biased_fraction,
            "colluding_fraction": colluding_fraction,
            "drifting_fraction": drifting_fraction,
            "sleeper_fraction": sleeper_fraction,
        }
        for name, fraction in fractions.items():
            if not 0.0 <= fraction <= 1.0:
                raise ConfigurationError(
                    f"{name} must lie in [0, 1], got {fraction!r}"
                )
        if sum(fractions.values()) > 1.0:
            raise ConfigurationError(
                "worker fractions must not sum to more than 1"
            )
        self._rng = np.random.default_rng(seed)
        seeds = self._rng.integers(0, 2**63 - 1, size=size)

        n_spam = int(round(size * spam_fraction))
        n_biased = int(round(size * biased_fraction))
        n_ring = int(round(size * colluding_fraction))
        n_drift = int(round(size * drifting_fraction))
        n_sleeper = int(round(size * sleeper_fraction))
        ring_seed = (int(seed) * _RING_SEED_MIX + 1) & (2**63 - 1)
        # Contiguous id bands in a fixed order; with the adversarial
        # fractions at 0 the composition — and every worker's seeded
        # stream — is byte-identical to the historical pool.
        bands = [n_spam, n_biased, n_ring, n_drift, n_sleeper]
        boundaries = [sum(bands[: i + 1]) for i in range(len(bands))]
        self._workers: list[Worker] = []
        for worker_id in range(size):
            worker_seed = int(seeds[worker_id])
            skill = 1.0
            if skill_spread > 0:
                skill = float(np.exp(self._rng.normal(0.0, skill_spread)))
            honest_kwargs = dict(
                skill=skill, reliability=reliability, synonym_rate=synonym_rate
            )
            if worker_id < boundaries[0]:
                worker: Worker = SpamWorker(worker_id, worker_seed)
            elif worker_id < boundaries[1]:
                worker = BiasedWorker(worker_id, worker_seed, **honest_kwargs)
            elif worker_id < boundaries[2]:
                worker = CollusionRingWorker(
                    worker_id,
                    worker_seed,
                    ring_seed=ring_seed,
                    bias_scale=collusion_bias_scale,
                    **honest_kwargs,
                )
            elif worker_id < boundaries[3]:
                worker = DriftingWorker(
                    worker_id, worker_seed, drift_rate=drift_rate, **honest_kwargs
                )
            elif worker_id < boundaries[4]:
                worker = SleeperWorker(
                    worker_id,
                    worker_seed,
                    patience=sleeper_patience,
                    **honest_kwargs,
                )
            else:
                worker = HonestWorker(worker_id, worker_seed, **honest_kwargs)
            if fault_spread > 0:
                worker.fault_proneness = float(
                    np.exp(self._rng.normal(0.0, fault_spread))
                )
            self._workers.append(worker)

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def workers(self) -> tuple[Worker, ...]:
        """The full population (read-only view)."""
        return tuple(self._workers)

    def draw(self) -> Worker:
        """Sample one worker uniformly at random (with replacement).

        Drawing with replacement across questions keeps answers
        independent, as assumed throughout the paper.
        """
        index = int(self._rng.integers(0, len(self._workers)))
        return self._workers[index]

    def draw_avoiding(
        self, blocked: set[int], max_redraws: int | None = None
    ) -> Worker:
        """Sample one worker, redrawing while the draw is in ``blocked``.

        Used by the resilience layer to route around quarantined
        workers.  After ``max_redraws`` unsuccessful redraws (default:
        the population size) the last draw is returned even if blocked,
        so a fully-quarantined population degrades to normal service
        instead of deadlocking.
        """
        if not blocked:
            return self.draw()
        attempts = len(self._workers) if max_redraws is None else max_redraws
        worker = self.draw()
        for _ in range(attempts):
            if worker.worker_id not in blocked:
                return worker
            worker = self.draw()
        return worker

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the pool and worker RNG states.

        Worker composition (types, skills, fault proneness) is fully
        determined by the constructor arguments, so only the mutable
        random state needs to travel in a checkpoint.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "workers": [worker.state_dict() for worker in self._workers],
        }

    def restore_state(self, payload: dict) -> None:
        """Restore RNG states captured by :meth:`state_dict`."""
        if len(payload["workers"]) != len(self._workers):
            raise ConfigurationError(
                f"checkpointed pool has {len(payload['workers'])} workers; "
                f"this pool has {len(self._workers)}"
            )
        self._rng.bit_generator.state = payload["rng"]
        for worker, state in zip(self._workers, payload["workers"]):
            worker.restore_state(state)

    def draw_distinct(self, n: int) -> list[Worker]:
        """Sample ``n`` distinct workers (for multi-vote tasks).

        Falls back to sampling with replacement when ``n`` exceeds the
        population size.
        """
        if n <= len(self._workers):
            indices = self._rng.choice(len(self._workers), size=n, replace=False)
        else:
            indices = self._rng.integers(0, len(self._workers), size=n)
        return [self._workers[int(i)] for i in indices]
