"""The four crowd question types of the paper (Section 2).

Questions are small immutable value objects.  They carry no behaviour:
workers (:mod:`repro.crowd.worker`) interpret them against a ground
truth domain, and the platform (:mod:`repro.crowd.platform`) prices and
records them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Question:
    """Base class for crowd questions.

    The :attr:`kind` property names the question category used by the
    price schedule and the cost ledger.
    """

    @property
    def kind(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ValueQuestion(Question):
    """Ask one worker to estimate the value ``o.a`` of one attribute.

    Example from the paper: show a worker a recipe and ask for the
    value of ``number_of_eggs``.
    """

    object_id: int
    attribute: str

    @property
    def kind(self) -> str:
        return "value"


@dataclass(frozen=True)
class DismantlingQuestion(Question):
    """Ask one worker to name another attribute related to ``attribute``.

    Example from the paper: *"which recipe attribute may help estimate
    its number_of_calories?"* with a likely answer such as
    ``is_dietetic``.
    """

    attribute: str

    @property
    def kind(self) -> str:
        return "dismantle"


@dataclass(frozen=True)
class VerificationQuestion(Question):
    """Ask one worker whether ``candidate`` helps estimating ``attribute``.

    Example from the paper: *"does knowing if a dish is_black help in
    determining its number_of_calories?"* (likely answer: no).
    """

    attribute: str
    candidate: str

    @property
    def kind(self) -> str:
        return "verification"


@dataclass(frozen=True)
class ExampleQuestion(Question):
    """Ask one worker for an example object with true values for targets.

    Example from the paper: upload a recipe together with its calorie
    value.  ``targets`` is the tuple of attribute names whose true
    values the worker must supply.
    """

    targets: tuple[str, ...]

    @property
    def kind(self) -> str:
        return "example"
