"""Worker models.

Workers generate answers to the four question types against a ground
truth :class:`~repro.domains.base.Domain`.  The paper assumes workers
are independent and that spam filters remove malicious ones; we provide
an honest-but-noisy worker matching those assumptions, a systematically
biased worker, and a spammer (to exercise the spam filter).

The honest worker's value answer is ``truth + eps`` with
``eps ~ N(0, difficulty(a))``, which makes the population statistics
the DisQ planner estimates coincide with the domain specification:
``E_O[Var(o.a^(1))] = difficulty(a)`` and the answer/target covariances
equal the true-value covariances.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod

import numpy as np

from repro.domains.base import IRRELEVANT, Domain


def clip_binary(values: np.ndarray, binary) -> np.ndarray:
    """In-place ``[0, 1]`` clip over all lanes (or a lane mask).

    ``binary`` is ``True``/``False`` for a single-attribute batch, or a
    boolean lane mask when lanes mix binary and continuous attributes.
    Uses the same ufunc as the scalar ``np.clip`` call, so clipped
    lanes are bit-identical to the scalar path.
    """
    if binary is True:
        np.clip(values, 0.0, 1.0, out=values)
    elif binary is not False:
        np.clip(values, 0.0, 1.0, out=values, where=binary)
    return values


def honest_values(truths, noise_sds, normals, binary) -> np.ndarray:
    """Vectorized :meth:`HonestWorker.answer_value_stateless` core.

    ``truths + normal(0, sd)`` per lane, clipped on binary lanes.  The
    ``+ 0.0`` mirrors ``Generator.normal``'s ``loc + scale * z`` (it
    canonicalizes ``-0.0`` noise to ``+0.0``), keeping every lane
    bit-identical to the scalar draw.
    """
    values = np.asarray(noise_sds, dtype=np.float64) * normals
    values += 0.0
    values += truths
    return clip_binary(values, binary)


def biased_shift(values, biases, binary) -> np.ndarray:
    """Vectorized :class:`BiasedWorker` post-shift (in place).

    Adds the persistent per-(worker, attribute) bias *after* the honest
    clip and re-clips binary lanes — the same two-clip order as the
    scalar path, which is observable when an answer saturates a bound.
    Lanes with bias ``0.0`` (honest workers in a mixed batch) are
    unchanged bit for bit: honest values are never ``-0.0`` (noise is
    canonicalized and the clip bounds are positive zeros).
    """
    values += biases
    return clip_binary(values, binary)


def spam_values(lows, highs, uniforms) -> np.ndarray:
    """Vectorized :meth:`SpamWorker.answer_value_stateless` core.

    ``low + (high - low) * u`` per lane — the exact arithmetic of
    ``Generator.uniform(low, high)``.
    """
    values = (np.asarray(highs, dtype=np.float64) - lows) * uniforms
    values += lows
    return values


class Worker(ABC):
    """One crowd member with a private random stream.

    Parameters
    ----------
    worker_id:
        Stable identifier (used by the spam filter and the recorder).
    seed:
        Seed of the worker's private RNG; distinct seeds give the
        independent workers the paper assumes.
    """

    def __init__(self, worker_id: int, seed: int) -> None:
        self.worker_id = worker_id
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        #: Multiplier on this worker's operational fault probabilities
        #: (timeouts, abandons, garbage) under fault injection; 1.0 is
        #: an average worker.  Set by the pool when heterogeneity is
        #: configured — it concentrates faults on a few workers, which
        #: is what makes per-worker quarantine effective.
        self.fault_proneness: float = 1.0

    # -- the four question types ---------------------------------------

    @abstractmethod
    def answer_value(self, domain: Domain, object_id: int, attribute: str) -> float:
        """Estimate ``o.a`` for one object."""

    @abstractmethod
    def answer_dismantle(self, domain: Domain, attribute: str) -> str:
        """Suggest an attribute that may help estimating ``attribute``."""

    @abstractmethod
    def answer_verification(
        self, domain: Domain, attribute: str, candidate: str
    ) -> bool:
        """Vote on whether ``candidate`` helps estimating ``attribute``."""

    def provide_example(
        self, domain: Domain, targets: tuple[str, ...]
    ) -> tuple[int, dict[str, float]]:
        """Supply an example object together with true target values.

        The paper assumes example values are correct (its authors used
        lab members as a gold-standard crowd), so every worker type
        reports the ground truth here.
        """
        object_id = domain.sample_object(self._rng)
        values = {target: domain.true_value(object_id, target) for target in targets}
        return object_id, values

    def answer_value_stateless(
        self,
        domain: Domain,
        object_id: int,
        attribute: str,
        rng: np.random.Generator,
    ) -> float:
        """Value answer drawn from a caller-supplied random stream.

        The serving engine's per-key answer streams need answers that
        are a pure function of ``(seed, object, attribute, index)`` —
        independent of how concurrent purchases interleave — so this
        variant must not touch the worker's private RNG (which is
        shared mutable state).  The answer *distribution* matches
        :meth:`answer_value`; only the source of randomness differs.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support stateless value answers"
        )

    def answer_values_stateless(
        self,
        domain: Domain,
        object_ids: np.ndarray,
        attribute: str,
        variates: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`answer_value_stateless` over one attribute.

        ``variates`` are this worker type's raw unit draws — standard
        normals for the honest family, unit uniforms for spammers —
        already extracted from each lane's per-coordinate generator.
        Must return bit-identical values to the scalar method lane by
        lane; the batched stream only routes lanes here when the
        worker's exact type is known to honour that contract.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support batched value answers"
        )

    # -- helpers ---------------------------------------------------------

    def _resolve_irrelevant(self, domain: Domain, attribute: str) -> str:
        """Pick a uniformly random attribute genuinely unrelated to ``attribute``.

        An "irrelevant" dismantling answer models a worker suggesting
        something unhelpful, so it is drawn from the attributes that do
        *not* co-vary with the one being dismantled (those would be
        legitimate answers, and the taxonomy already covers them).
        """
        related = set(domain.dismantle_distribution(attribute))
        candidates = [
            name
            for name in domain.attributes()
            if name != attribute
            and name not in related
            and not domain.is_relevant(attribute, name)
        ]
        if not candidates:
            candidates = [name for name in domain.attributes() if name != attribute]
        return str(self._rng.choice(candidates))

    def _surface_form(self, domain: Domain, attribute: str, synonym_rate: float) -> str:
        """Possibly replace an attribute name by one of its synonyms."""
        forms = domain.synonyms(attribute)
        if forms and self._rng.random() < synonym_rate:
            return str(self._rng.choice(forms))
        return attribute

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the worker's random stream."""
        return {"rng": self._rng.bit_generator.state}

    def restore_state(self, payload: dict) -> None:
        """Restore the worker's random stream from :meth:`state_dict`."""
        self._rng.bit_generator.state = payload["rng"]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.worker_id})"


class HonestWorker(Worker):
    """A well-meaning worker with attribute-dependent noise.

    Parameters
    ----------
    skill:
        Multiplier on the answer-noise variance; 1.0 is an average
        worker, below 1.0 is better than average.
    reliability:
        Probability of voting correctly on a verification question.
    synonym_rate:
        Probability of phrasing a dismantling answer with a synonym
        instead of the canonical attribute name.
    """

    def __init__(
        self,
        worker_id: int,
        seed: int,
        skill: float = 1.0,
        reliability: float = 0.8,
        synonym_rate: float = 0.3,
    ) -> None:
        super().__init__(worker_id, seed)
        self.skill = skill
        self.reliability = reliability
        self.synonym_rate = synonym_rate

    def answer_value(self, domain: Domain, object_id: int, attribute: str) -> float:
        truth = domain.true_value(object_id, attribute)
        noise_sd = np.sqrt(self.skill * domain.difficulty(attribute))
        answer = truth + self._rng.normal(0.0, noise_sd)
        if domain.is_binary(attribute):
            answer = float(np.clip(answer, 0.0, 1.0))
        return float(answer)

    def answer_value_stateless(
        self,
        domain: Domain,
        object_id: int,
        attribute: str,
        rng: np.random.Generator,
    ) -> float:
        truth = domain.true_value(object_id, attribute)
        noise_sd = np.sqrt(self.skill * domain.difficulty(attribute))
        answer = truth + rng.normal(0.0, noise_sd)
        if domain.is_binary(attribute):
            answer = float(np.clip(answer, 0.0, 1.0))
        return float(answer)

    def answer_values_stateless(
        self,
        domain: Domain,
        object_ids: np.ndarray,
        attribute: str,
        variates: np.ndarray,
    ) -> np.ndarray:
        truths = np.array(
            [domain.true_value(int(oid), attribute) for oid in object_ids],
            dtype=np.float64,
        )
        noise_sd = np.sqrt(self.skill * domain.difficulty(attribute))
        return honest_values(
            truths,
            noise_sd,
            np.asarray(variates, dtype=np.float64),
            bool(domain.is_binary(attribute)),
        )

    def answer_dismantle(self, domain: Domain, attribute: str) -> str:
        distribution = domain.dismantle_distribution(attribute)
        names = list(distribution)
        probabilities = np.array([distribution[name] for name in names], dtype=float)
        probabilities = probabilities / probabilities.sum()
        choice = str(names[self._rng.choice(len(names), p=probabilities)])
        if choice == IRRELEVANT:
            choice = self._resolve_irrelevant(domain, attribute)
        return self._surface_form(domain, choice, self.synonym_rate)

    def answer_verification(
        self, domain: Domain, attribute: str, candidate: str
    ) -> bool:
        truth = domain.is_relevant(attribute, candidate)
        if self._rng.random() < self.reliability:
            return truth
        return not truth


class BiasedWorker(HonestWorker):
    """An honest worker with a persistent additive bias per attribute.

    The bias for each attribute is drawn once (per worker) as a normal
    with standard deviation ``bias_scale`` times the worker-noise
    standard deviation; it then shifts every value answer the worker
    gives for that attribute.  This models systematic over/under
    estimators, a second-order effect the paper's averaging absorbs.
    """

    def __init__(
        self,
        worker_id: int,
        seed: int,
        bias_scale: float = 0.5,
        **kwargs: float,
    ) -> None:
        super().__init__(worker_id, seed, **kwargs)
        self.bias_scale = bias_scale
        self._biases: dict[str, float] = {}
        self._stateless_biases: dict[str, float] = {}

    def _bias(self, domain: Domain, attribute: str) -> float:
        if attribute not in self._biases:
            noise_sd = np.sqrt(self.skill * domain.difficulty(attribute))
            self._biases[attribute] = float(
                self._rng.normal(0.0, self.bias_scale * noise_sd)
            )
        return self._biases[attribute]

    def answer_value(self, domain: Domain, object_id: int, attribute: str) -> float:
        answer = super().answer_value(domain, object_id, attribute)
        answer += self._bias(domain, attribute)
        if domain.is_binary(attribute):
            answer = float(np.clip(answer, 0.0, 1.0))
        return answer

    def answer_value_stateless(
        self,
        domain: Domain,
        object_id: int,
        attribute: str,
        rng: np.random.Generator,
    ) -> float:
        answer = super().answer_value_stateless(domain, object_id, attribute, rng)
        answer += self.stateless_bias(domain, attribute)
        if domain.is_binary(attribute):
            answer = float(np.clip(answer, 0.0, 1.0))
        return answer

    def stateless_bias(self, domain: Domain, attribute: str) -> float:
        """The stateless-path bias for ``attribute`` (memoized).

        The persistent per-(worker, attribute) bias cannot come from
        the lazily-advanced private RNG; it is derived from the
        worker's seed and the attribute name so it is stable across
        any purchase order (crc32, not hash(): hash() is
        per-process).  The value is a pure function of the seed and
        attribute, so memoizing it is free of ordering effects.
        """
        cached = self._stateless_biases.get(attribute)
        if cached is None:
            noise_sd = np.sqrt(self.skill * domain.difficulty(attribute))
            bias_rng = np.random.default_rng(
                [self._seed, zlib.crc32(attribute.encode("utf-8"))]
            )
            cached = float(bias_rng.normal(0.0, self.bias_scale * noise_sd))
            self._stateless_biases[attribute] = cached
        return cached

    def answer_values_stateless(
        self,
        domain: Domain,
        object_ids: np.ndarray,
        attribute: str,
        variates: np.ndarray,
    ) -> np.ndarray:
        values = super().answer_values_stateless(
            domain, object_ids, attribute, variates
        )
        return biased_shift(
            values,
            self.stateless_bias(domain, attribute),
            bool(domain.is_binary(attribute)),
        )

    def state_dict(self) -> dict:
        # Biases are drawn lazily from the worker RNG; without them a
        # restored worker would redraw and shift its random stream.
        state = super().state_dict()
        state["biases"] = dict(self._biases)
        return state

    def restore_state(self, payload: dict) -> None:
        super().restore_state(payload)
        self._biases = {
            str(k): float(v) for k, v in payload.get("biases", {}).items()
        }


class CollusionRingWorker(HonestWorker):
    """A member of a colluding ring agreeing on per-question errors.

    Every ring member derives the *same* additive error for each
    (attribute, object) pair from the shared ``ring_seed`` instead of
    their private seed — the coordinated-adversary case: the ring
    agrees on a wrong answer per question, so its errors are perfectly
    correlated and a uniform mean is shifted by the full shared error
    instead of averaging it away.  Because the error varies per object
    (zero-mean across the database), no fitted intercept can calibrate
    it out the way a constant shift would be.  Per-question noise stays
    private (members answer slightly differently, so naive duplicate
    detection does not expose them).

    The shared error is a pure function of ``(ring_seed, attribute,
    object_id)``, so the stateful and stateless answer paths agree and
    the serving tier's determinism contracts hold; the batched stream
    routes these lanes through scalar replay (unknown exact type),
    which preserves byte identity by construction.
    """

    def __init__(
        self,
        worker_id: int,
        seed: int,
        ring_seed: int,
        bias_scale: float = 1.0,
        **kwargs: float,
    ) -> None:
        super().__init__(worker_id, seed, **kwargs)
        self.bias_scale = bias_scale
        self.ring_seed = int(ring_seed)
        self._ring_biases: dict[tuple[str, int], float] = {}

    def _ring_bias(self, domain: Domain, attribute: str, object_id: int) -> float:
        key = (attribute, int(object_id))
        cached = self._ring_biases.get(key)
        if cached is None:
            noise_sd = np.sqrt(self.skill * domain.difficulty(attribute))
            bias_rng = np.random.default_rng(
                [
                    self.ring_seed,
                    zlib.crc32(attribute.encode("utf-8")),
                    int(object_id),
                ]
            )
            cached = float(bias_rng.normal(0.0, self.bias_scale * noise_sd))
            self._ring_biases[key] = cached
        return cached

    def answer_value(self, domain: Domain, object_id: int, attribute: str) -> float:
        answer = super().answer_value(domain, object_id, attribute)
        answer += self._ring_bias(domain, attribute, object_id)
        if domain.is_binary(attribute):
            answer = float(np.clip(answer, 0.0, 1.0))
        return answer

    def answer_value_stateless(
        self,
        domain: Domain,
        object_id: int,
        attribute: str,
        rng: np.random.Generator,
    ) -> float:
        answer = super().answer_value_stateless(domain, object_id, attribute, rng)
        answer += self._ring_bias(domain, attribute, object_id)
        if domain.is_binary(attribute):
            answer = float(np.clip(answer, 0.0, 1.0))
        return answer

    def answer_values_stateless(
        self,
        domain: Domain,
        object_ids: np.ndarray,
        attribute: str,
        variates: np.ndarray,
    ) -> np.ndarray:
        values = super().answer_values_stateless(
            domain, object_ids, attribute, variates
        )
        biases = np.array(
            [
                self._ring_bias(domain, attribute, object_id)
                for object_id in object_ids
            ]
        )
        return biased_shift(values, biases, bool(domain.is_binary(attribute)))


class DriftingWorker(HonestWorker):
    """An honest worker whose answer noise grows along the object axis.

    Models reliability drift (fatigue, declining attention): the noise
    variance for object ``o`` is scaled by ``1 + drift_rate * o``.  The
    drift is keyed to the object id — the serving tier's only
    deterministic notion of progress — so both answer paths stay pure
    functions of their inputs and every byte-identity gate holds.
    """

    def __init__(
        self,
        worker_id: int,
        seed: int,
        drift_rate: float = 0.02,
        **kwargs: float,
    ) -> None:
        super().__init__(worker_id, seed, **kwargs)
        self.drift_rate = float(drift_rate)

    def _drifted_sd(self, domain: Domain, object_id: int, attribute: str) -> float:
        scale = 1.0 + self.drift_rate * max(int(object_id), 0)
        return float(np.sqrt(self.skill * scale * domain.difficulty(attribute)))

    def answer_value(self, domain: Domain, object_id: int, attribute: str) -> float:
        truth = domain.true_value(object_id, attribute)
        answer = truth + self._rng.normal(
            0.0, self._drifted_sd(domain, object_id, attribute)
        )
        if domain.is_binary(attribute):
            answer = float(np.clip(answer, 0.0, 1.0))
        return float(answer)

    def answer_value_stateless(
        self,
        domain: Domain,
        object_id: int,
        attribute: str,
        rng: np.random.Generator,
    ) -> float:
        truth = domain.true_value(object_id, attribute)
        answer = truth + rng.normal(
            0.0, self._drifted_sd(domain, object_id, attribute)
        )
        if domain.is_binary(attribute):
            answer = float(np.clip(answer, 0.0, 1.0))
        return float(answer)


class SleeperWorker(HonestWorker):
    """A spammer who behaves until the gold screen stops looking.

    Gold-standard screening checks workers on a known prefix of the
    object set; a sleeper answers those honestly and turns to spam
    afterwards.  The turn is keyed to the object id (``object_id >=
    patience``) rather than a stateful answer counter so the stateless
    serving paths agree with the offline path and answers stay pure
    per-coordinate functions.
    """

    def __init__(
        self,
        worker_id: int,
        seed: int,
        patience: int = 50,
        **kwargs: float,
    ) -> None:
        super().__init__(worker_id, seed, **kwargs)
        if patience < 0:
            raise ValueError(f"patience must be >= 0, got {patience}")
        self.patience = int(patience)

    def answer_value(self, domain: Domain, object_id: int, attribute: str) -> float:
        if int(object_id) < self.patience:
            return super().answer_value(domain, object_id, attribute)
        low, high = domain.answer_range(attribute)
        return float(self._rng.uniform(low, high))

    def answer_value_stateless(
        self,
        domain: Domain,
        object_id: int,
        attribute: str,
        rng: np.random.Generator,
    ) -> float:
        if int(object_id) < self.patience:
            return super().answer_value_stateless(domain, object_id, attribute, rng)
        low, high = domain.answer_range(attribute)
        return float(rng.uniform(low, high))


class SpamWorker(Worker):
    """A malicious/lazy worker producing uninformative answers.

    Value answers are uniform over the attribute's plausible range,
    dismantling answers are uniform over the attribute universe, and
    verification votes are fair coin flips.  Spam workers exist to
    exercise :mod:`repro.crowd.spam`; the paper assumes they are
    filtered out before aggregation.
    """

    def answer_value(self, domain: Domain, object_id: int, attribute: str) -> float:
        low, high = domain.answer_range(attribute)
        return float(self._rng.uniform(low, high))

    def answer_value_stateless(
        self,
        domain: Domain,
        object_id: int,
        attribute: str,
        rng: np.random.Generator,
    ) -> float:
        low, high = domain.answer_range(attribute)
        return float(rng.uniform(low, high))

    def answer_values_stateless(
        self,
        domain: Domain,
        object_ids: np.ndarray,
        attribute: str,
        variates: np.ndarray,
    ) -> np.ndarray:
        low, high = domain.answer_range(attribute)
        return spam_values(low, high, np.asarray(variates, dtype=np.float64))

    def answer_dismantle(self, domain: Domain, attribute: str) -> str:
        candidates = [name for name in domain.attributes() if name != attribute]
        return str(self._rng.choice(candidates))

    def answer_verification(
        self, domain: Domain, attribute: str, candidate: str
    ) -> bool:
        return bool(self._rng.random() < 0.5)
