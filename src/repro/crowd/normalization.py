"""Attribute-name normalization.

The paper assumes that dismantling answers referring to the same
property (*large*, *big*, *grand*) "can be reasonably identified and
merged to a single representative", e.g. with a thesaurus or NLP tools,
and shows in Section 5.4 that the algorithm survives imperfect or even
absent merging (at a somewhat higher preprocessing budget).

:class:`AttributeNormalizer` is that merging step.  It is built from a
domain's synonym map and supports three modes:

* ``PERFECT`` — every known surface form maps to its canonical name;
* ``IMPERFECT`` — each merge independently fails with a configurable
  probability (the surface form leaks through as a distinct attribute);
* ``NONE`` — no merging at all.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.domains.base import Domain
from repro.errors import ConfigurationError


class NormalizationMode(enum.Enum):
    """How aggressively synonym surface forms are merged."""

    PERFECT = "perfect"
    IMPERFECT = "imperfect"
    NONE = "none"


class AttributeNormalizer:
    """Maps worker-phrased attribute names to canonical ones.

    Parameters
    ----------
    domain:
        Source of the synonym map (``domain.synonyms(a)`` per attribute).
    mode:
        Merging behaviour, see :class:`NormalizationMode`.
    failure_rate:
        In ``IMPERFECT`` mode, the probability that a given surface
        form is (permanently) not recognised.  Failures are decided
        once per surface form so behaviour is stable within a run.
    seed:
        RNG seed for the imperfect-mode failure draws.
    """

    def __init__(
        self,
        domain: Domain,
        mode: NormalizationMode = NormalizationMode.PERFECT,
        failure_rate: float = 0.2,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ConfigurationError(f"failure_rate must be in [0, 1]: {failure_rate}")
        self.mode = mode
        self.failure_rate = failure_rate
        self._canonical: dict[str, str] = {}
        rng = np.random.default_rng(seed)
        for attribute in domain.attributes():
            for form in domain.synonyms(attribute):
                if mode is NormalizationMode.NONE:
                    continue
                if (
                    mode is NormalizationMode.IMPERFECT
                    and rng.random() < failure_rate
                ):
                    continue
                self._canonical[form] = attribute

    def normalize(self, name: str) -> str:
        """Canonical attribute name for a worker-phrased ``name``.

        Unknown names pass through unchanged — from the algorithm's
        point of view they are simply new attributes, which is exactly
        how the paper's no-unification robustness variant behaves.
        """
        return self._canonical.get(name, name)

    def known_forms(self) -> frozenset[str]:
        """All surface forms this normalizer will rewrite."""
        return frozenset(self._canonical)
