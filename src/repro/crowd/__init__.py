"""Crowd platform simulation substrate.

The paper ran its experiments against CrowdFlower workers and recorded
their answers in a database so that different algorithms could be
compared on identical data.  This subpackage is the stand-in for that
platform: a stochastic worker pool answering the paper's four question
types (value, dismantling, verification, example), a price schedule and
budget ledger matching Section 5.1, an answer recorder for
replay-across-algorithms, a spam filter, a sequential verification
decision procedure, and an attribute-name normalizer.

Beyond the paper's assumptions, :mod:`repro.crowd.faults` adds an
operational fault-injection and resilience layer (timeouts, abandons,
malformed answers, retries with backoff, per-worker quarantine); see
DESIGN.md's "Resilience & fault injection" section.
"""

from repro.crowd.faults import (
    FaultInjector,
    FaultKind,
    FaultProfile,
    FaultRates,
    ResilienceReport,
    RetryPolicy,
    SimulatedClock,
)
from repro.crowd.questions import (
    DismantlingQuestion,
    ExampleQuestion,
    Question,
    ValueQuestion,
    VerificationQuestion,
)
from repro.crowd.pricing import Budget, CostLedger, PriceSchedule
from repro.crowd.worker import BiasedWorker, HonestWorker, SpamWorker, Worker
from repro.crowd.pool import WorkerPool
from repro.crowd.recording import AnswerRecorder
from repro.crowd.quality import (
    BreakerState,
    GoldQuestionScreen,
    ReputationTracker,
    ScreenedPool,
    WorkerCircuitBreaker,
)
from repro.crowd.spam import AgreementSpamFilter, SpamFilter, ZScoreSpamFilter
from repro.crowd.verification import SequentialVerifier, VerificationResult
from repro.crowd.normalization import (
    AttributeNormalizer,
    NormalizationMode,
)
from repro.crowd.platform import CrowdPlatform

__all__ = [
    "AgreementSpamFilter",
    "AnswerRecorder",
    "AttributeNormalizer",
    "BiasedWorker",
    "BreakerState",
    "Budget",
    "CostLedger",
    "CrowdPlatform",
    "DismantlingQuestion",
    "ExampleQuestion",
    "FaultInjector",
    "FaultKind",
    "FaultProfile",
    "FaultRates",
    "GoldQuestionScreen",
    "HonestWorker",
    "NormalizationMode",
    "PriceSchedule",
    "Question",
    "ReputationTracker",
    "ResilienceReport",
    "RetryPolicy",
    "ScreenedPool",
    "SequentialVerifier",
    "SimulatedClock",
    "SpamFilter",
    "SpamWorker",
    "ValueQuestion",
    "VerificationQuestion",
    "VerificationResult",
    "Worker",
    "WorkerCircuitBreaker",
    "WorkerPool",
    "ZScoreSpamFilter",
]
