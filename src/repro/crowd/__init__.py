"""Crowd platform simulation substrate.

The paper ran its experiments against CrowdFlower workers and recorded
their answers in a database so that different algorithms could be
compared on identical data.  This subpackage is the stand-in for that
platform: a stochastic worker pool answering the paper's four question
types (value, dismantling, verification, example), a price schedule and
budget ledger matching Section 5.1, an answer recorder for
replay-across-algorithms, a spam filter, a sequential verification
decision procedure, and an attribute-name normalizer.
"""

from repro.crowd.questions import (
    DismantlingQuestion,
    ExampleQuestion,
    Question,
    ValueQuestion,
    VerificationQuestion,
)
from repro.crowd.pricing import Budget, CostLedger, PriceSchedule
from repro.crowd.worker import BiasedWorker, HonestWorker, SpamWorker, Worker
from repro.crowd.pool import WorkerPool
from repro.crowd.recording import AnswerRecorder
from repro.crowd.quality import (
    GoldQuestionScreen,
    ReputationTracker,
    ScreenedPool,
)
from repro.crowd.spam import AgreementSpamFilter, SpamFilter, ZScoreSpamFilter
from repro.crowd.verification import SequentialVerifier, VerificationResult
from repro.crowd.normalization import (
    AttributeNormalizer,
    NormalizationMode,
)
from repro.crowd.platform import CrowdPlatform

__all__ = [
    "AgreementSpamFilter",
    "AnswerRecorder",
    "AttributeNormalizer",
    "BiasedWorker",
    "Budget",
    "CostLedger",
    "CrowdPlatform",
    "DismantlingQuestion",
    "ExampleQuestion",
    "GoldQuestionScreen",
    "HonestWorker",
    "NormalizationMode",
    "PriceSchedule",
    "Question",
    "ReputationTracker",
    "ScreenedPool",
    "SequentialVerifier",
    "SpamFilter",
    "SpamWorker",
    "ValueQuestion",
    "VerificationQuestion",
    "VerificationResult",
    "Worker",
    "WorkerPool",
    "ZScoreSpamFilter",
]
