"""Answer recording and replay.

The paper stresses that crowd answers collected in early experiments
were *recorded in a database and reused in following experiments, so
that results of multiple runs/algorithms may be compared in equivalent
settings*.  :class:`AnswerRecorder` is that database: it stores, per
question key, the full sequence of answers ever generated, and hands
out stable prefixes.

Sharing one recorder across several :class:`~repro.crowd.platform.
CrowdPlatform` instances guarantees that two algorithms asking the same
questions receive byte-identical answers, which removes crowd variance
from algorithm comparisons exactly as in the paper.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator, TypeVar

T = TypeVar("T")

#: Worker id recorded for answers with no provenance (kept equal to
#: :data:`repro.agg.base.UNATTRIBUTED`; duplicated here so the crowd
#: layer needs no import of the aggregation package).
UNATTRIBUTED = -1

#: A recorded example: (object id, {target attribute: true value}).
ExampleRecord = tuple[int, dict[str, float]]


class AnswerRecorder:
    """Append-only store of crowd answers keyed by question identity.

    When ``journal`` is set (duck-typed against
    :class:`repro.durability.journal.Journal`), every *freshly
    generated* answer is journaled before it joins a tape — replayed
    prefixes cost nothing and are not re-journaled — so replaying the
    journal reconstructs the recorder exactly.
    """

    def __init__(self) -> None:
        self._values: dict[tuple[int, str], list[float]] = {}
        self._dismantles: dict[str, list[str]] = {}
        self._votes: dict[tuple[str, str], list[bool]] = {}
        self._examples: dict[tuple[str, ...], list[ExampleRecord]] = {}
        #: Per-key worker ids aligned with ``_values`` from index 0.  A
        #: tape may be *shorter* than its answer tape — missing suffix
        #: positions mean :data:`UNATTRIBUTED` (see
        #: :meth:`value_worker_ids`), so pre-attribution answers need no
        #: retroactive padding.
        self._value_workers: dict[tuple[int, str], list[int]] = {}
        self.journal: object | None = None

    # ------------------------------------------------------------------
    # Generic prefix access
    # ------------------------------------------------------------------

    def _extend_to(
        self,
        store: dict[Hashable, list[T]],
        kind: str,
        key: Hashable,
        length: int,
        generate: Callable[[], T],
    ) -> list[T]:
        sequence = store.setdefault(key, [])
        while len(sequence) < length:
            item = generate()
            if self.journal is not None:
                self.journal.record_answer(kind, key, len(sequence), item)
            sequence.append(item)
        return sequence

    # ------------------------------------------------------------------
    # Per-question-type access (used by the platform)
    # ------------------------------------------------------------------

    def value_answers(
        self,
        object_id: int,
        attribute: str,
        start: int,
        count: int,
        generate: Callable[[], float],
    ) -> list[float]:
        """Answers ``start .. start+count`` for one (object, attribute)."""
        sequence = self._extend_to(
            self._values, "value", (object_id, attribute), start + count, generate
        )
        return sequence[start : start + count]

    def value_answers_attributed(
        self,
        object_id: int,
        attribute: str,
        start: int,
        count: int,
        generate: Callable[[], tuple[float, int]],
    ) -> tuple[list[float], list[int]]:
        """Like :meth:`value_answers`, with per-answer worker provenance.

        ``generate`` returns ``(answer, worker_id)`` pairs; the worker
        id is journaled with the answer and kept on a parallel tape so
        reliability inference can pool residuals per worker.  Replayed
        prefixes return whatever provenance was recorded when they were
        first generated (:data:`UNATTRIBUTED` for answers that predate
        attribution).
        """
        key = (object_id, attribute)
        sequence = self._values.setdefault(key, [])
        workers = self._value_workers.setdefault(key, [])
        while len(sequence) < start + count:
            answer, worker = generate()
            if self.journal is not None:
                self.journal.record_answer(
                    "value", key, len(sequence), answer, worker=worker
                )
            # Pad the provenance tape up to this index first, so the
            # fresh id lands aligned even after unattributed history.
            while len(workers) < len(sequence):
                workers.append(UNATTRIBUTED)
            sequence.append(answer)
            workers.append(int(worker))
        return (
            sequence[start : start + count],
            self.value_worker_ids(object_id, attribute, start, count),
        )

    def value_worker_ids(
        self, object_id: int, attribute: str, start: int, count: int
    ) -> list[int]:
        """Worker ids for one key's answers, :data:`UNATTRIBUTED`-padded."""
        tape = self._value_workers.get((object_id, attribute), [])
        return [
            tape[i] if i < len(tape) else UNATTRIBUTED
            for i in range(start, start + count)
        ]

    def note_value_worker(
        self, object_id: int, attribute: str, index: int, worker: int
    ) -> None:
        """Record provenance for one already-stored answer (journal replay)."""
        workers = self._value_workers.setdefault((object_id, attribute), [])
        while len(workers) < index:
            workers.append(UNATTRIBUTED)
        if index == len(workers):
            workers.append(int(worker))
        else:
            workers[index] = int(worker)

    def attributed_value_tapes(
        self,
    ) -> Iterator[tuple[tuple[int, str], list[float], list[int]]]:
        """Every value tape with aligned worker ids, in sorted key order.

        The canonical iteration order (not dict insertion order) is what
        keeps reliability fits deterministic across runs that recorded
        the same answers in different sequences.
        """
        for key in sorted(self._values):
            values = self._values[key]
            yield key, values, self.value_worker_ids(key[0], key[1], 0, len(values))

    def dismantle_answers(
        self, attribute: str, start: int, count: int, generate: Callable[[], str]
    ) -> list[str]:
        """Dismantling answers ``start .. start+count`` for one attribute."""
        sequence = self._extend_to(
            self._dismantles, "dismantle", attribute, start + count, generate
        )
        return sequence[start : start + count]

    def verification_votes(
        self,
        attribute: str,
        candidate: str,
        start: int,
        count: int,
        generate: Callable[[], bool],
    ) -> list[bool]:
        """Verification votes ``start .. start+count`` for one pair."""
        sequence = self._extend_to(
            self._votes, "verification", (attribute, candidate), start + count, generate
        )
        return sequence[start : start + count]

    def examples(
        self,
        targets: tuple[str, ...],
        start: int,
        count: int,
        generate: Callable[[], ExampleRecord],
    ) -> list[ExampleRecord]:
        """Example records ``start .. start+count`` for one target tuple."""
        sequence = self._extend_to(
            self._examples, "example", targets, start + count, generate
        )
        return sequence[start : start + count]

    # ------------------------------------------------------------------
    # Introspection and persistence
    # ------------------------------------------------------------------

    def recorded_value_count(self, object_id: int, attribute: str) -> int:
        """How many value answers exist for one (object, attribute)."""
        return len(self._values.get((object_id, attribute), []))

    def recorded_dismantle_count(self, attribute: str) -> int:
        """How many dismantling answers exist for one attribute."""
        return len(self._dismantles.get(attribute, []))

    def recorded_counts(self) -> dict[str, int]:
        """Total recorded answers per question category.

        Under fault injection only *valid* answers reach the recorder,
        so comparing these counts with the ledger's question counts
        (paid) and retry counts (unpaid) audits the resilience layer.
        """
        return {
            "value": sum(len(v) for v in self._values.values()),
            "dismantle": sum(len(v) for v in self._dismantles.values()),
            "verification": sum(len(v) for v in self._votes.values()),
            "example": sum(len(v) for v in self._examples.values()),
        }

    def tape_lengths(self) -> dict[str, list]:
        """JSON-serialisable per-key tape lengths, one list per kind.

        Entry shapes: ``value`` → ``[object, attribute, length]``,
        ``dismantle`` → ``[attribute, length]``, ``verification`` →
        ``[attribute, candidate, length]``, ``example`` →
        ``[[targets...], length]``.  Journal resume markers embed this
        so replay can rewind to a checkpoint's exact state.
        """
        return {
            "value": [
                [oid, attr, len(answers)]
                for (oid, attr), answers in self._values.items()
            ],
            "dismantle": [
                [attr, len(answers)] for attr, answers in self._dismantles.items()
            ],
            "verification": [
                [attr, cand, len(votes)]
                for (attr, cand), votes in self._votes.items()
            ],
            "example": [
                [list(targets), len(records)]
                for targets, records in self._examples.items()
            ],
        }

    def snapshot(self) -> dict:
        """JSON-serialisable copy of the full recorder state."""
        return self.to_dict()

    def restore(self, payload: dict) -> None:
        """Replace all tapes with a :meth:`snapshot` payload (in place).

        Bypasses the journal: restoring a checkpoint re-installs
        answers that were already journaled when first generated.
        """
        other = AnswerRecorder.from_dict(payload)
        self._values = other._values
        self._value_workers = other._value_workers
        self._dismantles = other._dismantles
        self._votes = other._votes
        self._examples = other._examples

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot of every recorded answer."""
        def _value_entry(oid: int, attr: str, answers: list[float]) -> dict:
            entry = {"object": oid, "attribute": attr, "answers": answers}
            workers = self._value_workers.get((oid, attr))
            if workers:
                # Optional key: snapshots of unattributed runs stay
                # byte-identical to the pre-attribution format.
                entry["workers"] = self.value_worker_ids(oid, attr, 0, len(answers))
            return entry

        return {
            "values": [
                _value_entry(oid, attr, answers)
                for (oid, attr), answers in self._values.items()
            ],
            "dismantles": [
                {"attribute": attr, "answers": answers}
                for attr, answers in self._dismantles.items()
            ],
            "votes": [
                {"attribute": attr, "candidate": cand, "votes": votes}
                for (attr, cand), votes in self._votes.items()
            ],
            "examples": [
                {
                    "targets": list(targets),
                    "records": [
                        {"object": oid, "values": values} for oid, values in records
                    ],
                }
                for targets, records in self._examples.items()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AnswerRecorder":
        """Rebuild a recorder from :meth:`to_dict` output."""
        recorder = cls()
        for entry in payload.get("values", []):
            key = (int(entry["object"]), str(entry["attribute"]))
            recorder._values[key] = [float(a) for a in entry["answers"]]
            if entry.get("workers"):
                recorder._value_workers[key] = [int(w) for w in entry["workers"]]
        for entry in payload.get("dismantles", []):
            recorder._dismantles[str(entry["attribute"])] = [
                str(a) for a in entry["answers"]
            ]
        for entry in payload.get("votes", []):
            key = (str(entry["attribute"]), str(entry["candidate"]))
            recorder._votes[key] = [bool(v) for v in entry["votes"]]
        for entry in payload.get("examples", []):
            targets = tuple(str(t) for t in entry["targets"])
            recorder._examples[targets] = [
                (int(record["object"]), {k: float(v) for k, v in record["values"].items()})
                for record in entry["records"]
            ]
        return recorder
