"""The crowd platform facade.

:class:`CrowdPlatform` is the single entry point algorithms use to talk
to the (simulated) crowd.  It routes each question to a freshly drawn
worker, prices and charges it, records the answer for replay, applies
the spam filter to value-answer batches, and runs attribute-name
normalization on dismantling answers.

Replay semantics: the platform holds per-question-key cursors into a
shared :class:`~repro.crowd.recording.AnswerRecorder`.  A *new*
platform instance over the same recorder starts with fresh cursors and
therefore replays the identical answer stream — this is how different
algorithms are compared "in equivalent settings" as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.crowd.normalization import AttributeNormalizer
from repro.crowd.pool import WorkerPool
from repro.crowd.pricing import Budget, CostLedger, PriceSchedule
from repro.crowd.recording import AnswerRecorder, ExampleRecord
from repro.crowd.spam import SpamFilter
from repro.crowd.verification import SequentialVerifier, VerificationResult
from repro.domains.base import Domain
from repro.errors import UnknownAttributeError


class CrowdPlatform:
    """Simulated crowdsourcing platform over one ground-truth domain.

    Parameters
    ----------
    domain:
        The ground truth the workers answer about.
    pool:
        Worker population; defaults to 200 honest workers.
    prices:
        Price schedule; defaults to the paper's Section 5.1 prices.
    budget:
        Optional hard spending ceiling; ``None`` means unmetered (the
        ledger still records all costs).
    recorder:
        Shared answer store for replay across platform instances.
    spam_filter:
        Optional filter applied to each value-answer batch.
    normalizer:
        Attribute-name merger applied to dismantling answers.  Defaults
        to perfect merging (the paper's thesaurus assumption); pass an
        imperfect/disabled normalizer for the Section 5.4 robustness
        experiments.
    seed:
        Seed for the platform's own randomness (worker draws already
        have their own streams via the pool).
    """

    def __init__(
        self,
        domain: Domain,
        pool: WorkerPool | None = None,
        prices: PriceSchedule | None = None,
        budget: Budget | None = None,
        recorder: AnswerRecorder | None = None,
        spam_filter: SpamFilter | None = None,
        normalizer: AttributeNormalizer | None = None,
        seed: int = 0,
    ) -> None:
        self.domain = domain
        self.pool = pool if pool is not None else WorkerPool(seed=seed)
        self.prices = prices if prices is not None else PriceSchedule()
        self.budget = budget
        self.recorder = recorder if recorder is not None else AnswerRecorder()
        self.spam_filter = spam_filter
        self.normalizer = (
            normalizer if normalizer is not None else AttributeNormalizer(domain)
        )
        self.ledger = CostLedger()
        self._rng = np.random.default_rng(seed)

        # Surface form -> canonical resolution for ground-truth lookups.
        # This is intentionally independent of the (possibly imperfect)
        # normalizer: a worker who says "big" still *means* "large" even
        # if the algorithm fails to merge the two names.
        self._surface_to_canonical: dict[str, str] = {}
        for attribute in domain.attributes():
            for form in domain.synonyms(attribute):
                self._surface_to_canonical[form] = attribute

        # Replay cursors, one per question key, private to this instance.
        self._value_cursor: dict[tuple[int, str], int] = {}
        self._dismantle_cursor: dict[str, int] = {}
        self._vote_cursor: dict[tuple[str, str], int] = {}
        self._example_cursor: dict[tuple[str, ...], int] = {}

    # ------------------------------------------------------------------
    # Name handling and pricing
    # ------------------------------------------------------------------

    def resolve(self, name: str) -> str:
        """Canonical domain attribute behind an algorithm-visible name."""
        canonical = self._surface_to_canonical.get(name, name)
        if canonical not in self.domain.attributes():
            raise UnknownAttributeError(name)
        return canonical

    def knows(self, name: str) -> bool:
        """True if ``name`` denotes some domain attribute (or synonym)."""
        return (
            name in self._surface_to_canonical or name in self.domain.attributes()
        )

    def is_binary(self, name: str) -> bool:
        """Whether the named attribute is boolean-like (affects pricing)."""
        return self.domain.is_binary(self.resolve(name))

    def value_price(self, name: str) -> float:
        """Cost in cents of one value question about ``name``."""
        return self.prices.value_price(self.is_binary(name))

    def _charge(self, category: str, cost: float, count: int) -> None:
        if self.budget is not None:
            self.budget.charge(cost)
        self.ledger.record(category, cost, count)

    # ------------------------------------------------------------------
    # The four question types
    # ------------------------------------------------------------------

    def ask_value(self, object_id: int, attribute: str, n: int = 1) -> list[float]:
        """Ask ``n`` workers for the value of one object attribute.

        Returns the spam-filtered answer batch (raw batch if no filter
        is configured).  Charges ``n`` value questions.
        """
        if n <= 0:
            return []
        canonical = self.resolve(attribute)
        cost = n * self.value_price(attribute)
        self._charge("value", cost, n)
        key = (object_id, attribute)
        start = self._value_cursor.get(key, 0)
        answers = self.recorder.value_answers(
            object_id,
            attribute,
            start,
            n,
            lambda: self.pool.draw().answer_value(self.domain, object_id, canonical),
        )
        self._value_cursor[key] = start + n
        if self.spam_filter is not None:
            answers = self.spam_filter.filter(answers)
        return list(answers)

    def ask_value_mean(self, object_id: int, attribute: str, n: int) -> float:
        """Average of ``n`` value answers — the paper's ``o.a^(n)``."""
        answers = self.ask_value(object_id, attribute, n)
        return float(np.mean(answers)) if answers else float("nan")

    def ask_dismantle(self, attribute: str) -> str:
        """Ask one worker to dismantle ``attribute``; returns the
        (normalizer-processed) suggested attribute name."""
        canonical = self.resolve(attribute)
        self._charge("dismantle", self.prices.dismantle, 1)
        start = self._dismantle_cursor.get(attribute, 0)
        answers = self.recorder.dismantle_answers(
            attribute,
            start,
            1,
            lambda: self.pool.draw().answer_dismantle(self.domain, canonical),
        )
        self._dismantle_cursor[attribute] = start + 1
        answer = answers[0]
        if self.normalizer is not None:
            answer = self.normalizer.normalize(answer)
        return answer

    def ask_verification_vote(self, attribute: str, candidate: str) -> bool:
        """One worker vote on whether ``candidate`` helps ``attribute``."""
        canonical_attribute = self.resolve(attribute)
        canonical_candidate = self.resolve(candidate)
        self._charge("verification", self.prices.verification, 1)
        key = (attribute, candidate)
        start = self._vote_cursor.get(key, 0)
        votes = self.recorder.verification_votes(
            attribute,
            candidate,
            start,
            1,
            lambda: self.pool.draw().answer_verification(
                self.domain, canonical_attribute, canonical_candidate
            ),
        )
        self._vote_cursor[key] = start + 1
        return votes[0]

    def verify_candidate(
        self, attribute: str, candidate: str, verifier: SequentialVerifier | None = None
    ) -> VerificationResult:
        """Sequentially verify a dismantling answer (SPRT over votes)."""
        verifier = verifier if verifier is not None else SequentialVerifier()
        return verifier.verify(
            lambda: self.ask_verification_vote(attribute, candidate)
        )

    def ask_example(self, targets: tuple[str, ...]) -> ExampleRecord:
        """Ask one worker for an example object with true target values."""
        canonical_targets = tuple(self.resolve(target) for target in targets)
        self._charge("example", self.prices.example, 1)
        start = self._example_cursor.get(targets, 0)
        records = self.recorder.examples(
            targets,
            start,
            1,
            lambda: self.pool.draw().provide_example(self.domain, canonical_targets),
        )
        self._example_cursor[targets] = start + 1
        object_id, values = records[0]
        # Re-key the values under the algorithm-visible target names.
        visible = dict(zip(targets, (values[c] for c in canonical_targets)))
        return object_id, visible

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def total_spent(self) -> float:
        """Total cents spent through this platform instance."""
        return self.ledger.total_spent

    def fork(self, budget: Budget | None = None) -> "CrowdPlatform":
        """A fresh platform over the same domain, pool, and recorder.

        The fork starts with reset replay cursors and its own ledger and
        budget — the setup for comparing a second algorithm on identical
        crowd data.
        """
        return CrowdPlatform(
            domain=self.domain,
            pool=self.pool,
            prices=self.prices,
            budget=budget,
            recorder=self.recorder,
            spam_filter=self.spam_filter,
            normalizer=self.normalizer,
        )
