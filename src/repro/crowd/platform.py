"""The crowd platform facade.

:class:`CrowdPlatform` is the single entry point algorithms use to talk
to the (simulated) crowd.  It routes each question to a freshly drawn
worker, prices and charges it, records the answer for replay, applies
the spam filter to value-answer batches, and runs attribute-name
normalization on dismantling answers.

Replay semantics: the platform holds per-question-key cursors into a
shared :class:`~repro.crowd.recording.AnswerRecorder`.  A *new*
platform instance over the same recorder starts with fresh cursors and
therefore replays the identical answer stream — this is how different
algorithms are compared "in equivalent settings" as in the paper.

Resilience semantics: when a :class:`~repro.crowd.faults.FaultProfile`
is configured, every worker interaction may time out, be abandoned, or
return a malformed answer.  The platform then retries per its
:class:`~repro.crowd.faults.RetryPolicy` (exponential backoff on a
simulated clock), attributes faults to workers through a
:class:`~repro.crowd.quality.WorkerCircuitBreaker` that quarantines
repeat offenders, and only *valid* answers reach the recorder — so a
replay of fault-collected data is fault-free by construction.  With
faults disabled (the default, or ``FaultProfile.none()``) none of this
machinery runs and behavior is byte-identical to the fault-free path.

Charging semantics: budgets are *checked* before workers are engaged
(no answers are generated that cannot be paid for) but *debited* only
after a batch is fully collected, so an exception mid-batch — retry
exhaustion, for instance — never spends money without recording the
answers it bought.
"""

from __future__ import annotations

import math

import numpy as np

from repro.crowd.faults import (
    FaultInjector,
    FaultKind,
    FaultProfile,
    ResilienceReport,
    RetryPolicy,
    SimulatedClock,
    plausible_value,
)
from repro.crowd.normalization import AttributeNormalizer
from repro.crowd.pool import WorkerPool
from repro.crowd.pricing import Budget, CostLedger, PriceSchedule
from repro.crowd.quality import WorkerCircuitBreaker
from repro.crowd.recording import AnswerRecorder, ExampleRecord
from repro.crowd.spam import SpamFilter, rejected_indices
from repro.crowd.verification import SequentialVerifier, VerificationResult
from repro.domains.base import Domain
from repro.errors import (
    BudgetExhaustedError,
    ConfigurationError,
    CrowdTimeoutError,
    MalformedAnswerError,
    UnknownAttributeError,
)
from repro.obs import NULL_OBS, Observability



class CrowdPlatform:
    """Simulated crowdsourcing platform over one ground-truth domain.

    Parameters
    ----------
    domain:
        The ground truth the workers answer about.
    pool:
        Worker population; defaults to 200 honest workers.
    prices:
        Price schedule; defaults to the paper's Section 5.1 prices.
    budget:
        Optional hard spending ceiling; ``None`` means unmetered (the
        ledger still records all costs).
    recorder:
        Shared answer store for replay across platform instances.
    spam_filter:
        Optional filter applied to each value-answer batch.
    normalizer:
        Attribute-name merger applied to dismantling answers.  Defaults
        to perfect merging (the paper's thesaurus assumption); pass an
        imperfect/disabled normalizer for the Section 5.4 robustness
        experiments.
    seed:
        Seed for the platform's own randomness (worker draws already
        have their own streams via the pool).
    faults:
        Optional fault configuration: a
        :class:`~repro.crowd.faults.FaultProfile` (an injector is built
        from it, seeded from ``seed``) or a ready
        :class:`~repro.crowd.faults.FaultInjector`.  ``None`` or an
        all-zero profile disables fault injection entirely.
    retry:
        Retry policy used when faults are enabled (default:
        :class:`~repro.crowd.faults.RetryPolicy` defaults).
    breaker:
        Per-worker circuit breaker; a default one is created when
        faults are enabled.  Pass an explicit breaker to share
        quarantine state or tune its thresholds.
    clock:
        Simulated clock for latency/backoff/cooldown accounting; a
        fresh clock is created when faults are enabled.
    obs:
        Observability bundle (tracer + metrics).  Defaults to the
        shared no-op bundle: nothing is recorded and the code path is
        byte-identical to an uninstrumented platform.  When recording,
        the ledger, fault injector and circuit breaker all mirror
        their events into the same registry — see
        :mod:`repro.obs.manifest` for why that matters.
    """

    def __init__(
        self,
        domain: Domain,
        pool: WorkerPool | None = None,
        prices: PriceSchedule | None = None,
        budget: Budget | None = None,
        recorder: AnswerRecorder | None = None,
        spam_filter: SpamFilter | None = None,
        normalizer: AttributeNormalizer | None = None,
        seed: int = 0,
        faults: FaultProfile | FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        breaker: WorkerCircuitBreaker | None = None,
        clock: SimulatedClock | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.domain = domain
        self.pool = pool if pool is not None else WorkerPool(seed=seed)
        self.prices = prices if prices is not None else PriceSchedule()
        self.budget = budget
        self.recorder = recorder if recorder is not None else AnswerRecorder()
        self.spam_filter = spam_filter
        self.normalizer = (
            normalizer if normalizer is not None else AttributeNormalizer(domain)
        )
        self.obs = obs if obs is not None else NULL_OBS
        self.ledger = CostLedger(metrics=self.obs.metrics_sink)
        self._seed = seed
        self._rng = np.random.default_rng(seed)

        # Resilience layer.  A disabled profile collapses to None so
        # the fault-free code path is taken verbatim.
        injector: FaultInjector | None
        if isinstance(faults, FaultInjector):
            injector = faults
        elif isinstance(faults, FaultProfile):
            # Decorrelate the injector stream from the pool stream
            # (both default to `seed`) with a fixed odd multiplier.
            injector = FaultInjector(
                faults, seed=(seed * 2654435761 + 1) % (2**63)
            )
        else:
            injector = None
        if injector is not None and not injector.enabled:
            injector = None
        self.faults = injector
        self.retry = retry if retry is not None else RetryPolicy()
        if injector is not None:
            self.clock = clock if clock is not None else SimulatedClock()
            self.breaker = breaker if breaker is not None else WorkerCircuitBreaker()
        else:
            self.clock = clock
            self.breaker = breaker
        sink = self.obs.metrics_sink
        if sink is not None:
            if injector is not None:
                injector.metrics = sink
            if self.breaker is not None and getattr(self.breaker, "metrics", None) is None:
                self.breaker.metrics = sink
        #: Worker ids of the *freshly generated* answers of the current
        #: value batch, in generation (= batch-position) order.  Batch
        #: position ``i`` was produced by ``_batch_worker_ids[i -
        #: _batch_fresh_base]``; replayed answers (``i`` below the
        #: base) have no live worker behind them.  Keying by position —
        #: not by answer value — keeps spam-rejection attribution
        #: correct when two workers give the same value.
        self._batch_worker_ids: list[int] = []
        self._batch_fresh_base = 0

        # Surface form -> canonical resolution for ground-truth lookups.
        # This is intentionally independent of the (possibly imperfect)
        # normalizer: a worker who says "big" still *means* "large" even
        # if the algorithm fails to merge the two names.
        self._value_prices: dict[str, float] = {}
        self._surface_to_canonical: dict[str, str] = {}
        for attribute in domain.attributes():
            for form in domain.synonyms(attribute):
                self._surface_to_canonical[form] = attribute

        # Replay cursors, one per question key, private to this instance.
        self._value_cursor: dict[tuple[int, str], int] = {}
        self._dismantle_cursor: dict[str, int] = {}
        self._vote_cursor: dict[tuple[str, str], int] = {}
        self._example_cursor: dict[tuple[str, ...], int] = {}

        #: Optional duck-typed chaos hook (a
        #: :class:`repro.durability.chaos.CrashInjector`).  Notified
        #: *after* each batch is charged and journaled, so a simulated
        #: crash never loses a paid interaction.
        self.chaos: object | None = None

    # ------------------------------------------------------------------
    # Name handling and pricing
    # ------------------------------------------------------------------

    def resolve(self, name: str) -> str:
        """Canonical domain attribute behind an algorithm-visible name."""
        canonical = self._surface_to_canonical.get(name, name)
        if canonical not in self.domain.attributes():
            raise UnknownAttributeError(name)
        return canonical

    def knows(self, name: str) -> bool:
        """True if ``name`` denotes some domain attribute (or synonym)."""
        return (
            name in self._surface_to_canonical or name in self.domain.attributes()
        )

    def is_binary(self, name: str) -> bool:
        """Whether the named attribute is boolean-like (affects pricing)."""
        return self.domain.is_binary(self.resolve(name))

    def value_price(self, name: str) -> float:
        """Cost in cents of one value question about ``name``.

        Memoized: the synonym map and price schedule are fixed at
        construction, and the serving engine prices every key of every
        wave through here.
        """
        price = self._value_prices.get(name)
        if price is None:
            price = self.prices.value_price(self.is_binary(name))
            self._value_prices[name] = price
        return price

    def _check_affordable(self, cost: float) -> None:
        """Raise before engaging workers if the budget cannot cover ``cost``."""
        if self.budget is not None and not self.budget.can_afford(cost):
            raise BudgetExhaustedError(
                requested=cost, remaining=self.budget.remaining
            )

    def _charge(self, category: str, cost: float, count: int) -> None:
        """Debit a *collected* batch (call only after collection succeeds)."""
        if self.budget is not None:
            self.budget.charge(cost)
        self.ledger.record(category, cost, count)
        if self.chaos is not None:
            self.chaos.note_interactions(count)

    def charge_values(self, attribute: str, count: int) -> float:
        """Check and debit ``count`` value questions about ``attribute``.

        The serving engine generates its answers through deterministic
        per-key streams (:mod:`repro.serve.stream`) instead of
        :meth:`ask_value`, but the money still flows through this
        platform: the budget is checked before the charge and the
        ledger records it, exactly as for a platform-generated batch.
        Returns the cents charged.
        """
        if count <= 0:
            return 0.0
        cost = count * self.value_price(attribute)
        self._check_affordable(cost)
        self._charge("value", cost, count)
        return cost

    def check_values_affordable(self, attribute: str, count: int) -> float:
        """Budget pre-check for ``count`` value questions (no debit).

        The serving engine's write-ahead commit wants *journal before
        charge* (so a crash inside the charge re-charges from the
        journal instead of losing paid answers), but must never journal
        answers it cannot pay for.  This is the check it runs first.
        Raises :class:`~repro.errors.BudgetExhaustedError`; returns the
        cost that passed.
        """
        if count <= 0:
            return 0.0
        cost = count * self.value_price(attribute)
        self._check_affordable(cost)
        return cost

    def record_value_savings(self, attribute: str, count: int) -> float:
        """Record ``count`` cache-served value answers as ledger savings.

        Returns the cents that re-purchasing them would have cost.
        """
        if count <= 0:
            return 0.0
        saved = count * self.value_price(attribute)
        self.ledger.record_saving("value", saved, count)
        return saved

    # ------------------------------------------------------------------
    # Resilient worker interaction
    # ------------------------------------------------------------------

    def _draw_worker(self):
        """Draw a worker, routing around quarantined ones when possible."""
        if self.breaker is not None and self.clock is not None:
            blocked = set(self.breaker.quarantined(self.clock.now))
            if blocked and hasattr(self.pool, "draw_avoiding"):
                return self.pool.draw_avoiding(blocked)
        return self.pool.draw()

    def _note_outcome(self, worker, fault: bool) -> None:
        if self.breaker is not None and self.clock is not None:
            self.breaker.record_outcome(worker.worker_id, fault, self.clock.now)

    def _resilient_ask(self, category: str, produce, corrupt, validate):
        """One question under fault injection: retry until a valid answer.

        ``produce(worker)`` generates the genuine answer, ``corrupt()``
        the garbage replacement, ``validate(answer)`` the usability
        check.  Returns ``(answer, worker_id)``; raises
        :class:`CrowdTimeoutError` / :class:`MalformedAnswerError` when
        the retry policy is exhausted.
        """
        policy = self.retry
        injector = self.faults
        last_error: Exception = CrowdTimeoutError(category, policy.max_attempts)
        for attempt in range(policy.max_attempts):
            if attempt:
                self.ledger.record_retry(category)
                self.clock.advance(policy.delay(attempt - 1, injector.rng))
            worker = self._draw_worker()
            outcome = injector.draw(
                category, getattr(worker, "fault_proneness", 1.0)
            )
            self.clock.advance(outcome.latency)
            if outcome.kind is FaultKind.TIMEOUT:
                self.clock.advance(policy.question_timeout)
                self._note_outcome(worker, fault=True)
                last_error = CrowdTimeoutError(category, attempt + 1)
                continue
            if outcome.kind is FaultKind.ABANDON:
                self.ledger.record_abandon(category)
                self._note_outcome(worker, fault=True)
                last_error = CrowdTimeoutError(category, attempt + 1)
                continue
            answer = produce(worker)
            if outcome.kind is FaultKind.GARBAGE:
                answer = corrupt()
            if validate(answer):
                self._note_outcome(worker, fault=False)
                return answer, worker.worker_id
            self._note_outcome(worker, fault=True)
            last_error = MalformedAnswerError(category, answer)
        raise last_error

    def _valid_value(self, answer: object, low: float, high: float) -> bool:
        return plausible_value(answer, low, high)

    def _resilient_value(self, object_id: int, canonical: str) -> tuple[float, int]:
        low, high = self.domain.answer_range(canonical)
        answer, worker_id = self._resilient_ask(
            "value",
            produce=lambda worker: worker.answer_value(
                self.domain, object_id, canonical
            ),
            corrupt=lambda: self.faults.corrupt_value((low, high)),
            validate=lambda a: self._valid_value(a, low, high),
        )
        self._batch_worker_ids.append(worker_id)
        return float(answer), worker_id

    # ------------------------------------------------------------------
    # The four question types
    # ------------------------------------------------------------------

    def ask_value(self, object_id: int, attribute: str, n: int = 1) -> list[float]:
        """Ask ``n`` workers for the value of one object attribute.

        Returns the spam-filtered answer batch (raw batch if no filter
        is configured).  Charges ``n`` value questions after the batch
        is collected.
        """
        return self.ask_value_attributed(object_id, attribute, n)[0]

    def ask_value_attributed(
        self, object_id: int, attribute: str, n: int = 1
    ) -> tuple[list[float], list[int]]:
        """:meth:`ask_value` plus the worker id behind each answer.

        The ids align 1:1 with the returned (spam-filtered) answers and
        are also recorded on the recorder's provenance tapes, which is
        what reliability-weighted aggregation learns from.  Replayed
        prefixes return the provenance recorded when first generated
        (``-1`` for answers that predate attribution).
        """
        if n <= 0:
            return [], []
        canonical = self.resolve(attribute)
        cost = n * self.value_price(attribute)
        self._check_affordable(cost)
        key = (object_id, attribute)
        start = self._value_cursor.get(key, 0)
        if self.faults is None:
            def generate() -> tuple[float, int]:
                worker = self.pool.draw()
                return (
                    worker.answer_value(self.domain, object_id, canonical),
                    worker.worker_id,
                )
        else:
            # Fresh answers start where the recorder's tape currently
            # ends; batch positions before that replay recorded answers
            # and have no live worker behind them.
            self._batch_worker_ids = []
            self._batch_fresh_base = max(
                self.recorder.recorded_value_count(object_id, attribute) - start,
                0,
            )
            generate = lambda: self._resilient_value(  # noqa: E731
                object_id, canonical
            )
        answers, worker_ids = self.recorder.value_answers_attributed(
            object_id, attribute, start, n, generate
        )
        self._value_cursor[key] = start + n
        self._charge("value", cost, n)
        self.obs.tracer.event(
            "crowd.ask_value", object_id=object_id, attribute=attribute, n=n
        )
        if self.spam_filter is not None:
            kept = self.spam_filter.filter(answers)
            dropped = len(answers) - len(kept)
            if dropped:
                self.obs.metrics.inc("crowd.spam.rejected", dropped)
            rejected = rejected_indices(list(answers), list(kept))
            if self.faults is not None and self._batch_worker_ids:
                # Spam rejections count as faults for the workers that
                # produced them (quarantine input).  Attribution is by
                # batch *position* — aligned with ``rejected_indices``
                # — so two workers giving the same value can never be
                # confused; replayed answers are left unattributed.
                for index in rejected:
                    position = index - self._batch_fresh_base
                    if 0 <= position < len(self._batch_worker_ids):
                        self.breaker.record_fault(
                            self._batch_worker_ids[position], self.clock.now
                        )
            dropped_set = set(rejected)
            worker_ids = [
                wid for i, wid in enumerate(worker_ids) if i not in dropped_set
            ]
            answers = kept
        return list(answers), list(worker_ids)

    def ask_value_mean(self, object_id: int, attribute: str, n: int) -> float:
        """Average of ``n`` value answers — the paper's ``o.a^(n)``.

        Raises :class:`MalformedAnswerError` instead of returning NaN
        when no usable answer is available (e.g. the spam filter
        rejected the entire batch): a NaN here would silently poison
        the downstream ``S_o``/``S_a`` covariance estimates.
        """
        answers = self.ask_value(object_id, attribute, n)
        if answers:
            mean = float(np.mean(answers))
            if math.isfinite(mean):
                return mean
        raise MalformedAnswerError(
            "value",
            f"no usable answers for {attribute!r} on object {object_id} "
            f"(asked {n})",
        )

    def ask_dismantle(self, attribute: str) -> str:
        """Ask one worker to dismantle ``attribute``; returns the
        (normalizer-processed) suggested attribute name."""
        canonical = self.resolve(attribute)
        self._check_affordable(self.prices.dismantle)
        start = self._dismantle_cursor.get(attribute, 0)
        if self.faults is None:
            generate = lambda: self.pool.draw().answer_dismantle(  # noqa: E731
                self.domain, canonical
            )
        else:
            generate = lambda: self._resilient_ask(  # noqa: E731
                "dismantle",
                produce=lambda worker: worker.answer_dismantle(
                    self.domain, canonical
                ),
                corrupt=self.faults.corrupt_token,
                validate=lambda a: isinstance(a, str) and self.knows(a),
            )[0]
        answers = self.recorder.dismantle_answers(attribute, start, 1, generate)
        self._dismantle_cursor[attribute] = start + 1
        self._charge("dismantle", self.prices.dismantle, 1)
        self.obs.tracer.event("crowd.ask_dismantle", attribute=attribute)
        answer = answers[0]
        if self.normalizer is not None:
            answer = self.normalizer.normalize(answer)
        return answer

    def ask_verification_vote(self, attribute: str, candidate: str) -> bool:
        """One worker vote on whether ``candidate`` helps ``attribute``."""
        canonical_attribute = self.resolve(attribute)
        canonical_candidate = self.resolve(candidate)
        self._check_affordable(self.prices.verification)
        key = (attribute, candidate)
        start = self._vote_cursor.get(key, 0)
        if self.faults is None:
            generate = lambda: self.pool.draw().answer_verification(  # noqa: E731
                self.domain, canonical_attribute, canonical_candidate
            )
        else:
            generate = lambda: self._resilient_ask(  # noqa: E731
                "verification",
                produce=lambda worker: worker.answer_verification(
                    self.domain, canonical_attribute, canonical_candidate
                ),
                corrupt=lambda: None,  # wrong-type (missing) vote
                validate=lambda a: isinstance(a, bool),
            )[0]
        votes = self.recorder.verification_votes(
            attribute, candidate, start, 1, generate
        )
        self._vote_cursor[key] = start + 1
        self._charge("verification", self.prices.verification, 1)
        self.obs.tracer.event(
            "crowd.ask_verification", attribute=attribute, candidate=candidate
        )
        return votes[0]

    def verify_candidate(
        self, attribute: str, candidate: str, verifier: SequentialVerifier | None = None
    ) -> VerificationResult:
        """Sequentially verify a dismantling answer (SPRT over votes)."""
        verifier = verifier if verifier is not None else SequentialVerifier()
        return verifier.verify(
            lambda: self.ask_verification_vote(attribute, candidate)
        )

    def _corrupt_example(
        self, targets: tuple[str, ...]
    ) -> ExampleRecord:
        """A malformed example: plausible object, NaN target values."""
        object_id = self.domain.sample_object(self.faults.rng)
        return object_id, {target: float("nan") for target in targets}

    def _valid_example(self, record: object) -> bool:
        if not isinstance(record, tuple) or len(record) != 2:
            return False
        _, values = record
        if not isinstance(values, dict):
            return False
        return all(
            isinstance(v, (int, float)) and math.isfinite(float(v))
            for v in values.values()
        )

    def ask_example(self, targets: tuple[str, ...]) -> ExampleRecord:
        """Ask one worker for an example object with true target values."""
        canonical_targets = tuple(self.resolve(target) for target in targets)
        self._check_affordable(self.prices.example)
        start = self._example_cursor.get(targets, 0)
        if self.faults is None:
            generate = lambda: self.pool.draw().provide_example(  # noqa: E731
                self.domain, canonical_targets
            )
        else:
            generate = lambda: self._resilient_ask(  # noqa: E731
                "example",
                produce=lambda worker: worker.provide_example(
                    self.domain, canonical_targets
                ),
                corrupt=lambda: self._corrupt_example(canonical_targets),
                validate=self._valid_example,
            )[0]
        records = self.recorder.examples(targets, start, 1, generate)
        self._example_cursor[targets] = start + 1
        self._charge("example", self.prices.example, 1)
        self.obs.tracer.event("crowd.ask_example", targets="|".join(targets))
        object_id, values = records[0]
        # Re-key the values under the algorithm-visible target names.
        visible = dict(zip(targets, (values[c] for c in canonical_targets)))
        return object_id, visible

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def total_spent(self) -> float:
        """Total cents spent through this platform instance."""
        return self.ledger.total_spent

    def resilience_report(self) -> ResilienceReport:
        """What the resilience layer absorbed so far on this instance."""
        injector = self.faults
        counts = injector.counts if injector is not None else {}
        return ResilienceReport(
            retries_by_category=dict(self.ledger.retries_by_category),
            abandons_by_category=dict(self.ledger.abandons_by_category),
            timeouts=counts.get(FaultKind.TIMEOUT, 0),
            abandons=counts.get(FaultKind.ABANDON, 0),
            garbage_answers=counts.get(FaultKind.GARBAGE, 0),
            quarantined_workers=(
                self.breaker.quarantined(self.clock.now)
                if self.breaker is not None and self.clock is not None
                else ()
            ),
            simulated_seconds=self.clock.now if self.clock is not None else 0.0,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def capture_state(self) -> dict:
        """JSON-serialisable snapshot of all mutable platform state.

        Everything a deterministic re-execution needs travels here:
        replay cursors, every RNG (platform, pool, workers, injector),
        budget spend, ledger, recorder tapes, clock, and breaker
        records.  Restoring this onto a platform built with the *same*
        constructor arguments makes subsequent questions byte-identical
        to a run that never stopped.
        """
        state: dict = {
            "cursors": {
                "value": [
                    [oid, attr, pos]
                    for (oid, attr), pos in self._value_cursor.items()
                ],
                "dismantle": [
                    [attr, pos] for attr, pos in self._dismantle_cursor.items()
                ],
                "verification": [
                    [attr, cand, pos]
                    for (attr, cand), pos in self._vote_cursor.items()
                ],
                "example": [
                    [list(targets), pos]
                    for targets, pos in self._example_cursor.items()
                ],
            },
            "rng": self._rng.bit_generator.state,
            "budget": (
                {"total": self.budget.total, "spent": self.budget.spent}
                if self.budget is not None
                else None
            ),
            "ledger": self.ledger.snapshot(),
            "recorder": self.recorder.snapshot(),
            "pool": (
                self.pool.state_dict()
                if hasattr(self.pool, "state_dict")
                else None
            ),
            "injector": (
                self.faults.state_dict() if self.faults is not None else None
            ),
            "clock": (
                self.clock.state_dict() if self.clock is not None else None
            ),
            "breaker": (
                self.breaker.state_dict() if self.breaker is not None else None
            ),
        }
        return state

    def restore_state(self, payload: dict) -> None:
        """Restore :meth:`capture_state` onto an identically built platform."""
        cursors = payload["cursors"]
        self._value_cursor = {
            (int(oid), str(attr)): int(pos)
            for oid, attr, pos in cursors["value"]
        }
        self._dismantle_cursor = {
            str(attr): int(pos) for attr, pos in cursors["dismantle"]
        }
        self._vote_cursor = {
            (str(attr), str(cand)): int(pos)
            for attr, cand, pos in cursors["verification"]
        }
        self._example_cursor = {
            tuple(str(t) for t in targets): int(pos)
            for targets, pos in cursors["example"]
        }
        self._rng.bit_generator.state = payload["rng"]
        if payload["budget"] is not None:
            if self.budget is None or self.budget.total != payload["budget"]["total"]:
                raise ConfigurationError(
                    "checkpointed budget does not match this platform's budget"
                )
            self.budget.restore_spent(payload["budget"]["spent"])
        self.ledger.restore(payload["ledger"])
        self.recorder.restore(payload["recorder"])
        if payload["pool"] is not None and hasattr(self.pool, "restore_state"):
            self.pool.restore_state(payload["pool"])
        if payload["injector"] is not None and self.faults is not None:
            self.faults.restore_state(payload["injector"])
        if payload["clock"] is not None and self.clock is not None:
            self.clock.restore_state(payload["clock"])
        if payload["breaker"] is not None and self.breaker is not None:
            self.breaker.restore_state(payload["breaker"])

    def fork(
        self, budget: Budget | None = None, seed: int | None = None
    ) -> "CrowdPlatform":
        """A fresh platform over the same domain, pool, and recorder.

        The fork starts with reset replay cursors and its own ledger and
        budget — the setup for comparing a second algorithm on identical
        crowd data.  It inherits the parent's seed unless ``seed`` is
        given, and the parent's fault profile and retry policy (with a
        fresh injector, breaker and clock — quarantine and fault
        counters are per-run state).  The observability bundle is
        shared, so a fork's spending and faults accumulate into the
        same registry as the parent's.
        """
        return CrowdPlatform(
            domain=self.domain,
            pool=self.pool,
            prices=self.prices,
            budget=budget,
            recorder=self.recorder,
            spam_filter=self.spam_filter,
            normalizer=self.normalizer,
            seed=self._seed if seed is None else seed,
            faults=self.faults.profile if self.faults is not None else None,
            retry=self.retry,
            obs=self.obs,
        )
