"""Spam filtering of value answers.

The paper assumes *"spam filters are employed to avoid malicious
workers"* (Section 2) and cites Ipeirotis et al.'s quality-management
work.  We provide two standard answer-level filters: a robust z-score
filter around the median, and an agreement filter that keeps the
densest cluster of answers.  Both act on the answer multiset of a
single (object, attribute) pair, which is the granularity at which the
platform aggregates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError


def rejected_indices(original: list[float], kept: list[float]) -> list[int]:
    """Indices of ``original`` answers a filter dropped.

    Filters return a subsequence (order preserved); this recovers which
    positions were rejected, multiset-aware (duplicate values are
    matched left to right).  The resilience layer uses the positions to
    attribute spam rejections to the workers who produced them, feeding
    the per-worker circuit breaker.
    """
    rejected: list[int] = []
    kept_iter = iter(kept)
    pending = next(kept_iter, None)
    for index, answer in enumerate(original):
        if pending is not None and answer == pending:
            pending = next(kept_iter, None)
        else:
            rejected.append(index)
    return rejected


class SpamFilter(ABC):
    """Filters a batch of value answers for one (object, attribute)."""

    @abstractmethod
    def filter(self, answers: list[float]) -> list[float]:
        """Return the retained answers (order preserved, never empty)."""


class ZScoreSpamFilter(SpamFilter):
    """Drop answers far from the batch median, in robust z-score terms.

    The scale is the median absolute deviation (scaled to be consistent
    with a normal standard deviation); answers further than
    ``threshold`` scaled MADs from the median are dropped.  Batches of
    fewer than ``min_batch`` answers pass through untouched — with 1 or
    2 answers there is no notion of an outlier.
    """

    #: MAD -> standard-deviation consistency constant for the normal.
    _MAD_SCALE = 1.4826

    def __init__(self, threshold: float = 3.0, min_batch: int = 3) -> None:
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive: {threshold}")
        if min_batch < 2:
            raise ConfigurationError(f"min_batch must be at least 2: {min_batch}")
        self.threshold = threshold
        self.min_batch = min_batch

    def filter(self, answers: list[float]) -> list[float]:
        if len(answers) < self.min_batch:
            return list(answers)
        values = np.asarray(answers, dtype=float)
        median = float(np.median(values))
        mad = float(np.median(np.abs(values - median))) * self._MAD_SCALE
        if mad == 0.0:
            # Majority of answers agree exactly; keep only the agreeing ones
            # unless that would drop everything that disagrees by rounding.
            kept = [a for a in answers if a == median]
            return kept if kept else list(answers)
        kept = [
            answer
            for answer in answers
            if abs(answer - median) / mad <= self.threshold
        ]
        return kept if kept else [median]


class AgreementSpamFilter(SpamFilter):
    """Keep the largest cluster of mutually agreeing answers.

    Two answers *agree* when they differ by at most ``tolerance`` times
    the batch's interquartile range.  The filter keeps the largest
    agreement neighbourhood, breaking ties toward the batch median.
    This models reputation-free agreement-based quality control.
    """

    def __init__(self, tolerance: float = 1.0, min_batch: int = 4) -> None:
        if tolerance <= 0:
            raise ConfigurationError(f"tolerance must be positive: {tolerance}")
        if min_batch < 2:
            raise ConfigurationError(f"min_batch must be at least 2: {min_batch}")
        self.tolerance = tolerance
        self.min_batch = min_batch

    def filter(self, answers: list[float]) -> list[float]:
        if len(answers) < self.min_batch:
            return list(answers)
        values = np.asarray(answers, dtype=float)
        q75, q25 = np.percentile(values, [75, 25])
        scale = float(q75 - q25)
        if scale == 0.0:
            return list(answers)
        radius = self.tolerance * scale
        median = float(np.median(values))
        best_members: list[float] = []
        best_score = (-1, float("inf"))
        for center in values:
            members = [a for a in answers if abs(a - center) <= radius]
            score = (len(members), -abs(float(center) - median))
            if (score[0], -score[1]) > (best_score[0], -best_score[1]):
                best_score = (score[0], -score[1])
                best_members = members
        return best_members if best_members else list(answers)
