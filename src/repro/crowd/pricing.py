"""Crowd task pricing, budgets and cost accounting (paper Section 5.1).

The paper's price schedule, in US cents per answer:

========================  =====
binary value question      0.1
numeric value question     0.4
dismantling question       1.5
verification question      0.1
example question           5.0
========================  =====

(The paper prices dismantling/example questions explicitly and treats a
verification question as a cheap binary task; we follow that.)

:class:`Budget` enforces a hard ceiling and raises
:class:`~repro.errors.BudgetExhaustedError` when a task cannot be
afforded, which is how both the preprocessing loop and the online phase
learn that they must stop.  :class:`CostLedger` records per-category
spending so experiments can report where the budget went.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import BudgetExhaustedError, ConfigurationError

#: Question categories known to the ledger, in reporting order.
CATEGORIES = ("value", "dismantle", "verification", "example")


@dataclass(frozen=True)
class PriceSchedule:
    """Cost in cents of each crowd question category.

    Value questions are priced per the attribute's answer type: binary
    attributes (yes/no style, values in ``[0, 1]``) are cheaper than
    general numeric ones, exactly as in the paper.
    """

    binary_value: float = 0.1
    numeric_value: float = 0.4
    dismantle: float = 1.5
    verification: float = 0.1
    example: float = 5.0

    def __post_init__(self) -> None:
        for name in (
            "binary_value",
            "numeric_value",
            "dismantle",
            "verification",
            "example",
        ):
            price = getattr(self, name)
            if price < 0 or not math.isfinite(price):
                raise ConfigurationError(
                    f"price {name}={price!r} must be a non-negative finite number"
                )

    def value_price(self, binary: bool) -> float:
        """Price of one value question for a binary or numeric attribute."""
        return self.binary_value if binary else self.numeric_value

    def scaled(self, factor: float) -> "PriceSchedule":
        """Return a schedule with every price multiplied by ``factor``.

        Used by the Section 5.4 pricing-robustness experiment.
        """
        if factor <= 0:
            raise ConfigurationError(f"price scale factor must be positive: {factor}")
        return PriceSchedule(
            binary_value=self.binary_value * factor,
            numeric_value=self.numeric_value * factor,
            dismantle=self.dismantle * factor,
            verification=self.verification * factor,
            example=self.example * factor,
        )


@dataclass
class CostLedger:
    """Running record of crowd spending, split by question category.

    Besides paid answers, the ledger counts *unpaid* operational events
    from the resilience layer: retried attempts (a worker timed out or
    answered garbage, another was asked) and abandonments.  Retries and
    abandons cost nothing — real platforms do not pay for rejected or
    expired assignments — but their counts are what fault-rate sweeps
    and :class:`~repro.crowd.faults.ResilienceReport` report.
    """

    spent_by_category: dict[str, float] = field(
        default_factory=lambda: {category: 0.0 for category in CATEGORIES}
    )
    questions_by_category: dict[str, int] = field(
        default_factory=lambda: {category: 0 for category in CATEGORIES}
    )
    retries_by_category: dict[str, int] = field(
        default_factory=lambda: {category: 0 for category in CATEGORIES}
    )
    abandons_by_category: dict[str, int] = field(
        default_factory=lambda: {category: 0 for category in CATEGORIES}
    )
    saved_by_category: dict[str, float] = field(
        default_factory=lambda: {category: 0.0 for category in CATEGORIES}
    )
    saved_answers_by_category: dict[str, int] = field(
        default_factory=lambda: {category: 0 for category in CATEGORIES}
    )
    #: Optional duck-typed observability sink (a
    #: :class:`repro.obs.metrics.MetricsRegistry`).  Every entry the
    #: ledger records is mirrored into ``crowd.*`` counters, which is
    #: what makes run manifests and the ledger agree by construction.
    #: ``None`` (the default) keeps the uninstrumented path to a single
    #: identity check.
    metrics: object | None = field(default=None, repr=False, compare=False)
    #: Optional duck-typed write-ahead journal (a
    #: :class:`repro.durability.journal.Journal`).  Every entry is
    #: journaled *before* it mutates the ledger, so a crash between the
    #: two leaves the journal strictly ahead — replay reapplies the
    #: entry instead of losing it, and nothing is double-charged.
    journal: object | None = field(default=None, repr=False, compare=False)

    @property
    def total_spent(self) -> float:
        """Total cents spent so far across all categories."""
        return sum(self.spent_by_category.values())

    @property
    def total_questions(self) -> int:
        """Total number of crowd answers paid for so far."""
        return sum(self.questions_by_category.values())

    def record(self, category: str, cost: float, count: int = 1) -> None:
        """Record ``count`` answers of ``category`` costing ``cost`` in total."""
        if category not in self.spent_by_category:
            raise ConfigurationError(f"unknown ledger category: {category!r}")
        if cost < 0 or count < 0:
            raise ConfigurationError("ledger entries must be non-negative")
        if self.journal is not None:
            self.journal.record_ledger("charge", category, cost=cost, count=count)
        self.spent_by_category[category] += cost
        self.questions_by_category[category] += count
        if self.metrics is not None:
            self.metrics.inc(f"crowd.spend.{category}", cost)
            self.metrics.inc(f"crowd.questions.{category}", count)

    @property
    def total_retries(self) -> int:
        """Total retried attempts recorded across all categories."""
        return sum(self.retries_by_category.values())

    @property
    def total_abandons(self) -> int:
        """Total worker abandonments recorded across all categories."""
        return sum(self.abandons_by_category.values())

    def record_retry(self, category: str, count: int = 1) -> None:
        """Record ``count`` retried (unpaid) attempts of ``category``."""
        if category not in self.retries_by_category:
            raise ConfigurationError(f"unknown ledger category: {category!r}")
        if count < 0:
            raise ConfigurationError("ledger entries must be non-negative")
        if self.journal is not None:
            self.journal.record_ledger("retry", category, count=count)
        self.retries_by_category[category] += count
        if self.metrics is not None:
            self.metrics.inc(f"crowd.retries.{category}", count)

    @property
    def total_saved(self) -> float:
        """Cents *not* spent thanks to answer reuse (cache hits)."""
        return sum(self.saved_by_category.values())

    @property
    def total_saved_answers(self) -> int:
        """Answers served from a cache instead of being re-purchased."""
        return sum(self.saved_answers_by_category.values())

    def record_saving(self, category: str, cost: float, count: int = 1) -> None:
        """Record ``count`` cache-served answers worth ``cost`` cents.

        Savings are what the serving engine's answer cache avoided
        re-purchasing; they never touch the spend counters, so
        ``total_spent`` stays the money that actually left the budget.
        """
        if category not in self.saved_by_category:
            raise ConfigurationError(f"unknown ledger category: {category!r}")
        if cost < 0 or count < 0:
            raise ConfigurationError("ledger entries must be non-negative")
        if self.journal is not None:
            self.journal.record_ledger("saving", category, cost=cost, count=count)
        self.saved_by_category[category] += cost
        self.saved_answers_by_category[category] += count
        if self.metrics is not None:
            self.metrics.inc(f"crowd.saved.{category}", cost)
            self.metrics.inc(f"crowd.saved_answers.{category}", count)

    def record_abandon(self, category: str, count: int = 1) -> None:
        """Record ``count`` abandoned (unpaid) assignments of ``category``."""
        if category not in self.abandons_by_category:
            raise ConfigurationError(f"unknown ledger category: {category!r}")
        if count < 0:
            raise ConfigurationError("ledger entries must be non-negative")
        if self.journal is not None:
            self.journal.record_ledger("abandon", category, count=count)
        self.abandons_by_category[category] += count
        if self.metrics is not None:
            self.metrics.inc(f"crowd.abandons.{category}", count)

    def snapshot(self) -> dict[str, dict]:
        """JSON-serialisable copy of the full ledger state.

        Used by checkpoints and journal resume markers; restore with
        :meth:`restore`.  For before/after spend diffs, read
        ``snapshot()["spent_by_category"]``.
        """
        return {
            "spent_by_category": dict(self.spent_by_category),
            "questions_by_category": dict(self.questions_by_category),
            "retries_by_category": dict(self.retries_by_category),
            "abandons_by_category": dict(self.abandons_by_category),
            "saved_by_category": dict(self.saved_by_category),
            "saved_answers_by_category": dict(self.saved_answers_by_category),
        }

    def restore(self, payload: dict) -> None:
        """Replace all counters with a :meth:`snapshot` payload (in place).

        Neither the metrics sink nor the journal sees restored entries:
        both already observed them when the entries were first recorded.
        """
        self.spent_by_category = {
            str(k): float(v) for k, v in payload["spent_by_category"].items()
        }
        self.questions_by_category = {
            str(k): int(v) for k, v in payload["questions_by_category"].items()
        }
        self.retries_by_category = {
            str(k): int(v) for k, v in payload["retries_by_category"].items()
        }
        self.abandons_by_category = {
            str(k): int(v) for k, v in payload["abandons_by_category"].items()
        }
        # Older snapshots (pre-serving-engine) carry no savings section.
        self.saved_by_category = {
            str(k): float(v)
            for k, v in payload.get(
                "saved_by_category", {category: 0.0 for category in CATEGORIES}
            ).items()
        }
        self.saved_answers_by_category = {
            str(k): int(v)
            for k, v in payload.get(
                "saved_answers_by_category",
                {category: 0 for category in CATEGORIES},
            ).items()
        }


class Budget:
    """A hard spending ceiling, in cents.

    ``charge`` debits the budget and raises
    :class:`~repro.errors.BudgetExhaustedError` if the cost cannot be
    covered; ``can_afford`` lets planners probe without spending.
    """

    def __init__(self, total_cents: float) -> None:
        if total_cents < 0 or not math.isfinite(total_cents):
            raise ConfigurationError(
                f"budget must be a non-negative finite number, got {total_cents!r}"
            )
        self._total = float(total_cents)
        self._spent = 0.0

    @property
    def total(self) -> float:
        """The initial allocation, in cents."""
        return self._total

    @property
    def spent(self) -> float:
        """Cents spent so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Cents still available."""
        return self._total - self._spent

    def can_afford(self, cost: float) -> bool:
        """True if ``cost`` cents can be charged without overdraft.

        A tiny epsilon absorbs floating-point accumulation error so a
        budget of exactly ``n`` questions is not rejected on the last one.
        """
        return cost <= self.remaining + 1e-9

    def charge(self, cost: float) -> None:
        """Debit ``cost`` cents, raising if the budget cannot cover it."""
        if cost < 0:
            raise ConfigurationError(f"cannot charge a negative cost: {cost}")
        if not self.can_afford(cost):
            raise BudgetExhaustedError(requested=cost, remaining=self.remaining)
        self._spent += cost

    def restore_spent(self, spent: float) -> None:
        """Reset the spent amount to a checkpointed value."""
        spent = float(spent)
        if not math.isfinite(spent) or spent < 0 or spent > self._total + 1e-9:
            raise ConfigurationError(
                f"checkpointed spend {spent!r} is outside budget "
                f"[0, {self._total}]"
            )
        self._spent = spent

    def __repr__(self) -> str:
        return f"Budget(total={self._total:.2f}c, remaining={self.remaining:.2f}c)"
