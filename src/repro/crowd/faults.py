"""Operational fault injection and resilience primitives.

The paper's Section 5.4 robustness study perturbs *statistical*
assumptions (attribute quality, normalization, rho, pricing); a
deployed crowd system must additionally survive *operational* faults —
workers who time out, abandon a task, or return malformed answers
(NaN, out-of-range, wrong type), all after an unpredictable latency.
Related systems treat non-response and task latency as first-class
(Trushkowsky et al., "Getting It All from the Crowd"; the T-Crowd
model of unreliable tabular answers); this module is our equivalent.

Components:

* :class:`FaultProfile` / :class:`FaultRates` — declarative per
  question-category fault probabilities.  ``FaultProfile.none()`` is
  the exact no-op: the platform skips the entire fault machinery, so
  disabled runs stay byte-identical to the fault-free code path.
* :class:`FaultInjector` — draws fault outcomes from a profile with a
  private RNG (seeded independently of the answer streams, so enabling
  faults never perturbs the recorded answers themselves).
* :class:`RetryPolicy` — bounded retries with exponential backoff,
  jitter and a per-question timeout, all on a :class:`SimulatedClock`.
* :class:`ResilienceReport` — what actually happened: retries,
  abandons, quarantined workers, and any plan degradation.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

#: Question categories faults can be configured for (ledger categories).
FAULT_CATEGORIES = ("value", "dismantle", "verification", "example")


class SimulatedClock:
    """A monotonic simulated clock, advanced by latencies and backoff.

    All resilience timing (worker latency, retry backoff, quarantine
    cooldown) runs on this clock, never on wall time, so experiments
    stay deterministic and instant.
    """

    def __init__(self, start: float = 0.0) -> None:
        if not math.isfinite(start):
            raise ConfigurationError(f"clock start must be finite: {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward (negative advances are configuration bugs).

        NaN and infinity are rejected explicitly: ``nan < 0`` is False,
        so without the finiteness check a NaN advance would silently
        poison the clock and every timing-based decision after it.
        """
        if not math.isfinite(seconds) or seconds < 0:
            raise ConfigurationError(f"cannot advance clock by {seconds!r}")
        self._now += float(seconds)
        return self._now

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the clock."""
        return {"now": self._now}

    def restore_state(self, payload: dict) -> None:
        """Restore the clock from :meth:`state_dict`."""
        now = float(payload["now"])
        if not math.isfinite(now):
            raise ConfigurationError(f"checkpointed clock is not finite: {now!r}")
        self._now = now


class FaultKind(enum.Enum):
    """What went wrong with one worker interaction."""

    OK = "ok"
    TIMEOUT = "timeout"
    ABANDON = "abandon"
    GARBAGE = "garbage"


@dataclass(frozen=True)
class FaultRates:
    """Fault probabilities for one question category.

    Attributes
    ----------
    timeout:
        Probability the worker never responds within the deadline.
    abandon:
        Probability the worker accepts the task but walks away.
    garbage:
        Probability the answer is malformed (NaN / out-of-range /
        wrong type for value questions, an unknown token for
        dismantling answers).
    latency_mean:
        Mean simulated response latency in seconds (exponential).
    """

    timeout: float = 0.0
    abandon: float = 0.0
    garbage: float = 0.0
    latency_mean: float = 0.0

    def __post_init__(self) -> None:
        for name in ("timeout", "abandon", "garbage"):
            rate = getattr(self, name)
            # isfinite first: NaN fails chained comparisons anyway, but
            # the explicit check gives an unambiguous error message.
            if not math.isfinite(rate) or not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault rate {name}={rate!r} must be finite and lie in [0, 1]"
                )
        if self.timeout + self.abandon + self.garbage > 1.0 + 1e-12:
            raise ConfigurationError(
                "timeout + abandon + garbage must not exceed 1"
            )
        if self.latency_mean < 0 or not math.isfinite(self.latency_mean):
            raise ConfigurationError(
                f"latency_mean must be non-negative and finite: {self.latency_mean!r}"
            )

    @property
    def any_fault(self) -> bool:
        """Whether this category can produce any fault or latency."""
        return (
            self.timeout > 0
            or self.abandon > 0
            or self.garbage > 0
            or self.latency_mean > 0
        )


@dataclass(frozen=True)
class FaultProfile:
    """Declarative fault configuration, per question category.

    ``default`` applies to every category unless an entry in
    ``overrides`` (category name -> :class:`FaultRates`) replaces it.

    ``FaultProfile.none()`` (or any profile whose rates are all zero)
    disables the fault machinery entirely — the platform takes the
    original code path and produces byte-identical results.
    """

    default: FaultRates = field(default_factory=FaultRates)
    overrides: tuple[tuple[str, FaultRates], ...] = ()

    def __post_init__(self) -> None:
        for category, _ in self.overrides:
            if category not in FAULT_CATEGORIES:
                raise ConfigurationError(
                    f"unknown fault category {category!r}; "
                    f"choose from {FAULT_CATEGORIES}"
                )

    @classmethod
    def none(cls) -> "FaultProfile":
        """The all-zero profile: fault injection fully disabled."""
        return cls()

    @classmethod
    def uniform(
        cls,
        rate: float,
        latency_mean: float = 0.0,
        timeout_share: float = 0.4,
        abandon_share: float = 0.3,
    ) -> "FaultProfile":
        """A profile faulting every category with total probability ``rate``.

        The rate is split across timeout / abandon / garbage by the
        given shares (garbage takes the remainder).
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"fault rate must lie in [0, 1]: {rate}")
        if timeout_share < 0 or abandon_share < 0 or timeout_share + abandon_share > 1:
            raise ConfigurationError("fault shares must be non-negative and sum <= 1")
        garbage_share = 1.0 - timeout_share - abandon_share
        return cls(
            default=FaultRates(
                timeout=rate * timeout_share,
                abandon=rate * abandon_share,
                garbage=rate * garbage_share,
                latency_mean=latency_mean,
            )
        )

    def with_override(self, category: str, rates: FaultRates) -> "FaultProfile":
        """Copy with one category's rates replaced."""
        kept = tuple(
            (name, value) for name, value in self.overrides if name != category
        )
        return FaultProfile(default=self.default, overrides=kept + ((category, rates),))

    def rates_for(self, category: str) -> FaultRates:
        """The effective rates for one question category."""
        for name, rates in self.overrides:
            if name == category:
                return rates
        return self.default

    @property
    def enabled(self) -> bool:
        """Whether any category can fault (False for ``none()``)."""
        if self.default.any_fault:
            return True
        return any(rates.any_fault for _, rates in self.overrides)


@dataclass(frozen=True)
class FaultOutcome:
    """One drawn interaction outcome: what happened and how long it took."""

    kind: FaultKind
    latency: float = 0.0


#: Validation margin for value answers, in answer-range spans.  Honest
#: noise can stray a little outside the plausible range; injected
#: garbage lands at least 10 spans out, so the margin separates them
#: deterministically.
VALUE_MARGIN_SPANS = 5.0


def plausible_value(answer: object, low: float, high: float) -> bool:
    """Whether one value answer passes the platform's validation.

    Finite, numeric (bool excluded) and within :data:`VALUE_MARGIN_SPANS`
    answer-range spans of ``[low, high]``.  This is the single
    definition both the offline platform and the serving engine's fault
    layer use, so garbage is rejected identically everywhere.
    """
    if not isinstance(answer, (int, float)) or isinstance(answer, bool):
        return False
    if not math.isfinite(float(answer)):
        return False
    margin = VALUE_MARGIN_SPANS * max(high - low, 1.0)
    return low - margin <= float(answer) <= high + margin


def draw_outcome(
    rates: FaultRates, proneness: float, rng: np.random.Generator
) -> FaultOutcome:
    """Draw one interaction outcome from explicit rates and an RNG.

    The pure core of :meth:`FaultInjector.draw`: all randomness comes
    from the caller's generator, so callers that derive the generator
    from coordinates (the serving engine's per-answer streams) get
    outcomes that are pure functions of those coordinates.  Draw order
    (latency first, then the fault roll) is load-bearing: it must match
    the injector's historical order so enabling the shared-RNG path
    reproduces old runs.
    """
    latency = 0.0
    if rates.latency_mean > 0:
        latency = float(rng.exponential(rates.latency_mean))
    p_timeout = min(rates.timeout * proneness, 1.0)
    p_abandon = min(rates.abandon * proneness, 1.0)
    p_garbage = min(rates.garbage * proneness, 1.0)
    roll = float(rng.random())
    if roll < p_timeout:
        kind = FaultKind.TIMEOUT
    elif roll < p_timeout + p_abandon:
        kind = FaultKind.ABANDON
    elif roll < p_timeout + p_abandon + p_garbage:
        kind = FaultKind.GARBAGE
    else:
        kind = FaultKind.OK
    return FaultOutcome(kind=kind, latency=latency)


def corrupted_value(
    answer_range: tuple[float, float], rng: np.random.Generator
) -> float:
    """A malformed value answer drawn from an explicit RNG.

    All corruption modes are *detectably* malformed —
    :func:`plausible_value` rejects every one of them, so garbage
    manifests as retries rather than silent estimate poisoning
    (in-range plausible garbage is the spam filter's job, not this
    one's).
    """
    low, high = answer_range
    span = max(high - low, 1.0)
    mode = int(rng.integers(0, 3))
    if mode == 0:
        return float("nan")
    if mode == 1:
        return float(high + span * float(rng.uniform(10.0, 100.0)))
    return float(low - span * float(rng.uniform(10.0, 100.0)))


class FaultInjector:
    """Draws fault outcomes and corrupts answers, per a profile.

    The injector owns a private RNG so enabling faults never disturbs
    the worker answer streams (they keep their own generators), and two
    runs with the same profile and seed fault identically.

    Parameters
    ----------
    profile:
        The fault configuration.
    seed:
        Seed of the injector's private RNG.
    """

    def __init__(self, profile: FaultProfile, seed: int = 0) -> None:
        self.profile = profile
        self._rng = np.random.default_rng(seed)
        self.counts: dict[FaultKind, int] = {kind: 0 for kind in FaultKind}
        #: Optional duck-typed metrics sink; non-OK draws increment
        #: ``crowd.faults.<kind>`` (same counts as :attr:`counts`).
        self.metrics: object | None = None

    @property
    def enabled(self) -> bool:
        """Whether this injector can produce any fault."""
        return self.profile.enabled

    @property
    def rng(self) -> np.random.Generator:
        """The injector's private RNG (shared with retry jitter)."""
        return self._rng

    def draw(self, category: str, proneness: float = 1.0) -> FaultOutcome:
        """Draw the outcome of one worker interaction.

        ``proneness`` scales the per-worker fault probabilities (see
        ``Worker.fault_proneness``); 1.0 is an average worker.
        """
        outcome = draw_outcome(self.profile.rates_for(category), proneness, self._rng)
        self.counts[outcome.kind] += 1
        if self.metrics is not None and outcome.kind is not FaultKind.OK:
            self.metrics.inc(f"crowd.faults.{outcome.kind.value}")
        return outcome

    def corrupt_value(self, answer_range: tuple[float, float]) -> float:
        """A malformed value answer: NaN or far out of plausible range.

        Delegates to :func:`corrupted_value` with the injector's private
        RNG; see there for why every mode is detectably malformed.
        """
        return corrupted_value(answer_range, self._rng)

    def corrupt_token(self) -> str:
        """A malformed dismantling answer (an unknown token)."""
        return f"__garbage_{int(self._rng.integers(0, 10**6))}__"

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot of the injector's mutable state."""
        return {
            "rng": self._rng.bit_generator.state,
            "counts": {kind.value: count for kind, count in self.counts.items()},
        }

    def restore_state(self, payload: dict) -> None:
        """Restore RNG and fault counts from :meth:`state_dict`."""
        self._rng.bit_generator.state = payload["rng"]
        self.counts = {
            kind: int(payload["counts"].get(kind.value, 0)) for kind in FaultKind
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff on the simulated clock.

    Attributes
    ----------
    max_retries:
        Retries allowed after the first attempt (so a question is asked
        at most ``max_retries + 1`` times).
    base_delay:
        Backoff before the first retry, in simulated seconds.
    multiplier:
        Exponential growth factor of the backoff.
    max_delay:
        Ceiling on a single backoff interval.
    jitter:
        Fraction of the interval drawn uniformly at random and added,
        to decorrelate retry storms (0 disables jitter).
    question_timeout:
        Simulated seconds after which a silent worker counts as timed
        out (advances the clock on every timeout fault).
    """

    max_retries: int = 4
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    question_timeout: float = 60.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.max_retries) or self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0: {self.max_retries!r}")
        for name in ("base_delay", "max_delay", "question_timeout"):
            delay = getattr(self, name)
            # NaN passes a bare `< 0` guard and inf makes backoff never
            # terminate in simulated time; both are configuration bugs.
            if not math.isfinite(delay) or delay < 0:
                raise ConfigurationError(
                    f"retry delay {name}={delay!r} must be non-negative and finite"
                )
        if not math.isfinite(self.multiplier) or self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be finite and >= 1: {self.multiplier!r}"
            )
        if not math.isfinite(self.jitter) or not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be finite and lie in [0, 1]: {self.jitter!r}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts allowed per question."""
        return self.max_retries + 1

    def backoff(self, retry_index: int) -> float:
        """Deterministic backoff before retry ``retry_index`` (0-based)."""
        if retry_index < 0:
            raise ConfigurationError(f"retry index must be >= 0: {retry_index}")
        return min(self.base_delay * self.multiplier**retry_index, self.max_delay)

    def delay(self, retry_index: int, rng: np.random.Generator | None = None) -> float:
        """Backoff plus jitter for retry ``retry_index``."""
        interval = self.backoff(retry_index)
        if self.jitter > 0 and rng is not None:
            interval += interval * self.jitter * float(rng.random())
        return interval


@dataclass
class ResilienceReport:
    """What the resilience layer absorbed during one run.

    Attributes
    ----------
    retries_by_category:
        Extra attempts per question category (beyond the first).
    abandons_by_category:
        Worker abandonments per question category.
    timeouts / abandons / garbage_answers:
        Fault counts as drawn by the injector.
    quarantined_workers:
        Worker ids currently quarantined by the circuit breaker.
    degradations:
        Human-readable degradation events (plan salvage, dropped
        attributes, skipped online terms).
    simulated_seconds:
        Total simulated time spent on latency, timeouts and backoff.
    """

    retries_by_category: dict[str, int] = field(default_factory=dict)
    abandons_by_category: dict[str, int] = field(default_factory=dict)
    timeouts: int = 0
    abandons: int = 0
    garbage_answers: int = 0
    quarantined_workers: tuple[int, ...] = ()
    degradations: list[str] = field(default_factory=list)
    simulated_seconds: float = 0.0

    @property
    def total_retries(self) -> int:
        """Total retried attempts across categories."""
        return sum(self.retries_by_category.values())

    @property
    def total_abandons(self) -> int:
        """Total abandonments across categories."""
        return sum(self.abandons_by_category.values())

    @property
    def degraded(self) -> bool:
        """Whether the plan had to give something up."""
        return bool(self.degradations)

    def add_degradation(self, event: str) -> None:
        """Record one degradation event."""
        self.degradations.append(event)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            "resilience report",
            f"  retries: {self.total_retries} "
            f"({dict(self.retries_by_category)})",
            f"  abandons: {self.total_abandons} "
            f"({dict(self.abandons_by_category)})",
            f"  faults drawn: {self.timeouts} timeouts, "
            f"{self.abandons} abandons, {self.garbage_answers} garbage",
            f"  quarantined workers: {list(self.quarantined_workers)}",
            f"  simulated seconds: {self.simulated_seconds:.1f}",
        ]
        if self.degradations:
            lines.append("  degradations:")
            lines.extend(f"    - {event}" for event in self.degradations)
        else:
            lines.append("  degradations: none")
        return "\n".join(lines)
