"""Sequential verification of dismantling answers.

After a dismantling question returns a candidate attribute, the paper
verifies it with crowd *verification questions*, using "standard
algorithms such as [CrowdScreen]" to decide how many yes/no votes are
needed.  We implement the classical sequential probability ratio test
(Wald 1945, which the paper also cites for question difficulty):

* H1 — the candidate is relevant; workers vote *yes* with probability
  ``p1`` (their reliability).
* H0 — the candidate is irrelevant; workers vote *yes* with probability
  ``p0 = 1 - p1`` for symmetric reliability.

Votes are requested one at a time until the log-likelihood ratio
crosses Wald's thresholds for the requested error rates, or the vote
budget runs out (in which case the majority decides).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of a sequential verification run.

    Attributes
    ----------
    accepted:
        Final decision: is the candidate attribute relevant?
    votes:
        The individual worker votes, in order.
    decided_early:
        True if the SPRT crossed a threshold before the vote cap.
    """

    accepted: bool
    votes: tuple[bool, ...]
    decided_early: bool

    @property
    def votes_used(self) -> int:
        """Number of paid verification answers."""
        return len(self.votes)


class SequentialVerifier:
    """Wald sequential probability ratio test over worker yes/no votes.

    Parameters
    ----------
    reliability:
        Assumed worker correctness probability ``p1`` (must exceed 0.5);
        the irrelevant hypothesis uses ``p0 = 1 - reliability``.
    alpha:
        Tolerated probability of accepting an irrelevant candidate.
    beta:
        Tolerated probability of rejecting a relevant candidate.
    max_votes:
        Hard cap on votes per candidate; majority decides at the cap.
    """

    def __init__(
        self,
        reliability: float = 0.8,
        alpha: float = 0.1,
        beta: float = 0.1,
        max_votes: int = 15,
    ) -> None:
        if not 0.5 < reliability < 1.0:
            raise ConfigurationError(
                f"reliability must be in (0.5, 1), got {reliability}"
            )
        if not 0.0 < alpha < 0.5 or not 0.0 < beta < 0.5:
            raise ConfigurationError("alpha and beta must be in (0, 0.5)")
        if max_votes < 1:
            raise ConfigurationError(f"max_votes must be positive: {max_votes}")
        self.reliability = reliability
        self.alpha = alpha
        self.beta = beta
        self.max_votes = max_votes
        p1, p0 = reliability, 1.0 - reliability
        self._llr_yes = math.log(p1 / p0)
        self._llr_no = math.log((1.0 - p1) / (1.0 - p0))
        self._upper = math.log((1.0 - beta) / alpha)
        self._lower = math.log(beta / (1.0 - alpha))

    def expected_votes(self, relevant: bool) -> float:
        """Wald's approximate expected sample size under one hypothesis.

        Used by the budget manager to price a dismantling round before
        committing to it.
        """
        p1 = self.reliability if relevant else 1.0 - self.reliability
        drift = p1 * self._llr_yes + (1.0 - p1) * self._llr_no
        boundary = self._upper if relevant else self._lower
        if drift == 0:
            return float(self.max_votes)
        return min(float(self.max_votes), abs(boundary / drift))

    def verify(self, ask_vote: Callable[[], bool]) -> VerificationResult:
        """Run the SPRT, pulling one vote at a time from ``ask_vote``."""
        llr = 0.0
        votes: list[bool] = []
        while len(votes) < self.max_votes:
            vote = bool(ask_vote())
            votes.append(vote)
            llr += self._llr_yes if vote else self._llr_no
            if llr >= self._upper:
                return VerificationResult(
                    accepted=True, votes=tuple(votes), decided_early=True
                )
            if llr <= self._lower:
                return VerificationResult(
                    accepted=False, votes=tuple(votes), decided_early=True
                )
        yes_count = sum(votes)
        return VerificationResult(
            accepted=yes_count * 2 > len(votes),
            votes=tuple(votes),
            decided_early=False,
        )
