"""Answer-aggregation strategies behind one :class:`Aggregator` protocol.

The paper's online phase buys ``b(a)`` answers per attribute per object
and averages them uniformly — one spammy or colluding worker therefore
degrades every estimate their answers touch.  This package makes the
aggregation step pluggable:

``uniform``
    Today's arithmetic mean, byte-identical to the historical
    ``float(np.mean(answers))`` default (the whole serving tier's
    determinism gates compare against it, so it must never change).
``trimmed``
    Symmetric trimmed mean: sort, drop ``floor(n * trim_fraction)``
    answers from each end, average the middle.  Robust to a bounded
    fraction of arbitrary outliers with zero per-worker state.
``huber``
    Huber M-estimator via iteratively reweighted least squares around
    the median/MAD.  Softer than trimming: outliers are down-weighted
    in proportion to how far they sit, not discarded outright.
``reliability``
    Precision-weighted mean using per-worker reliabilities learned by
    :class:`~repro.agg.reliability.ReliabilityModel` from
    cross-attribute residual consistency (T-Crowd-style joint
    inference).  Needs worker-attributed answers.

Determinism contract (load-bearing for workers-1==4, any shard count,
and crash-resume byte-identity):

* Weighted sums go through :func:`weighted_mean`, which uses
  :func:`math.fsum` — *exactly rounded*, hence permutation-invariant in
  answer arrival order without sorting.
* When every weight is equal the weighted mean falls through to
  ``float(np.mean(values))`` on the arrival-order array, so a
  reliability aggregator whose learned precisions are all equal is
  *bitwise* equal to ``uniform`` (property-tested).
* ``trimmed``/``huber`` canonicalise through ``np.sort`` first, so they
  are arrival-order invariant by construction.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Legal ``--aggregator`` / ``DisQParams.aggregator`` values.
AGGREGATORS = ("uniform", "trimmed", "huber", "reliability")

#: Sentinel worker id for answers with no recorded provenance (old
#: journals, pre-seeded caches).  Aggregators give it neutral weight.
UNATTRIBUTED = -1


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Exactly-rounded weighted mean, permutation-invariant.

    ``fsum`` computes the correctly rounded sum of the product multiset,
    so any arrival order of ``(value, weight)`` pairs yields the same
    float.  The equal-weights branch returns ``float(np.mean(values))``
    on the arrival-order array instead — *that* is what makes
    reliability-with-flat-precisions bitwise equal to the historical
    uniform mean (the system never reorders answer tapes, so arrival
    order is itself canonical there).
    """
    if not len(values):
        raise ConfigurationError("cannot aggregate an empty answer set")
    first = float(weights[0])
    if all(float(w) == first for w in weights):
        return float(np.mean(np.asarray(values, dtype=np.float64)))
    num = math.fsum(float(v) * float(w) for v, w in zip(values, weights))
    den = math.fsum(float(w) for w in weights)
    if den <= 0.0:
        return float(np.mean(np.asarray(values, dtype=np.float64)))
    return num / den


def effective_sample_size(weights: Sequence[float]) -> float:
    """Kish effective sample size ``(Σw)² / Σw²`` (fsum, exact)."""
    total = math.fsum(float(w) for w in weights)
    square = math.fsum(float(w) * float(w) for w in weights)
    if square <= 0.0:
        return 0.0
    return (total * total) / square


class Aggregator:
    """One strategy for collapsing an answer tape into an estimate.

    Subclasses override :meth:`aggregate` (and :meth:`effective_count`
    when weighting changes how much evidence the answers carry).
    ``needs_workers`` marks strategies that require worker-attributed
    answers; callers must then fetch via ``fetch_attributed`` sources.
    """

    #: Strategy name, one of :data:`AGGREGATORS`.
    name: str = "uniform"
    #: True when :meth:`aggregate` needs per-answer worker ids.
    needs_workers: bool = False

    def aggregate(
        self,
        values: np.ndarray | Sequence[float],
        worker_ids: Sequence[int] | None = None,
    ) -> float:
        """Collapse one key's answers into a single estimate."""
        raise NotImplementedError

    def effective_count(
        self,
        values: np.ndarray | Sequence[float],
        worker_ids: Sequence[int] | None = None,
    ) -> float:
        """How many uniform answers this tape is worth (for intervals)."""
        return float(len(values))


class UniformAggregator(Aggregator):
    """The historical mean — byte-identical to ``float(np.mean(...))``."""

    name = "uniform"

    def aggregate(self, values, worker_ids=None) -> float:
        return float(np.mean(np.asarray(values, dtype=np.float64)))


class TrimmedAggregator(Aggregator):
    """Symmetric trimmed mean over the sorted answer tape."""

    name = "trimmed"

    def __init__(self, trim_fraction: float = 0.1) -> None:
        validate_trim_fraction(trim_fraction)
        self.trim_fraction = float(trim_fraction)

    def aggregate(self, values, worker_ids=None) -> float:
        tape = np.sort(np.asarray(values, dtype=np.float64))
        if not tape.size:
            raise ConfigurationError("cannot aggregate an empty answer set")
        drop = int(tape.size * self.trim_fraction)
        # trim_fraction < 0.5 guarantees 2*drop <= n-1, so the middle
        # slice is never empty.
        return float(np.mean(tape[drop : tape.size - drop]))

    def effective_count(self, values, worker_ids=None) -> float:
        n = len(values)
        return float(n - 2 * int(n * self.trim_fraction))


class HuberAggregator(Aggregator):
    """Huber M-estimator: IRLS around the median with MAD scale.

    A fixed iteration count and sorted canonical input keep it a pure
    function of the answer multiset — deterministic at any worker or
    shard count.
    """

    name = "huber"

    #: Fixed IRLS sweep count; convergence-threshold loops would make
    #: the result depend on float noise in the stopping test.
    ITERATIONS = 3

    #: Consistency factor making the MAD estimate sigma for Gaussians.
    MAD_SCALE = 1.4826

    def __init__(self, delta: float = 1.5) -> None:
        validate_huber_delta(delta)
        self.delta = float(delta)

    def _weights(self, tape: np.ndarray, center: float, scale: float) -> np.ndarray:
        spread = np.abs(tape - center) / scale
        with np.errstate(divide="ignore"):
            weights = np.where(spread > self.delta, self.delta / spread, 1.0)
        return weights

    def aggregate(self, values, worker_ids=None) -> float:
        tape = np.sort(np.asarray(values, dtype=np.float64))
        if not tape.size:
            raise ConfigurationError("cannot aggregate an empty answer set")
        center = float(np.median(tape))
        scale = self.MAD_SCALE * float(np.median(np.abs(tape - center)))
        if scale <= 0.0:
            # Half or more of the answers coincide with the median;
            # the median itself is the robust estimate.
            return center
        for _ in range(self.ITERATIONS):
            weights = self._weights(tape, center, scale)
            center = weighted_mean(tape, weights)
        return center

    def effective_count(self, values, worker_ids=None) -> float:
        tape = np.sort(np.asarray(values, dtype=np.float64))
        center = float(np.median(tape))
        scale = self.MAD_SCALE * float(np.median(np.abs(tape - center)))
        if scale <= 0.0:
            return float(tape.size)
        return effective_sample_size(self._weights(tape, center, scale))


def validate_trim_fraction(trim_fraction: float) -> float:
    """``[0, 0.5)`` and finite, else :class:`ConfigurationError`."""
    value = float(trim_fraction)
    if not math.isfinite(value) or not 0.0 <= value < 0.5:
        raise ConfigurationError(
            f"trim_fraction must be finite and in [0, 0.5), got {trim_fraction!r}"
        )
    return value


def validate_huber_delta(delta: float) -> float:
    """Finite and positive, else :class:`ConfigurationError`."""
    value = float(delta)
    if not math.isfinite(value) or value <= 0.0:
        raise ConfigurationError(
            f"huber delta must be finite and > 0, got {delta!r}"
        )
    return value


def validate_em_iterations(em_iterations: int) -> int:
    """Integer ``>= 1``, else :class:`ConfigurationError`."""
    if isinstance(em_iterations, float) and not float(em_iterations).is_integer():
        raise ConfigurationError(
            f"em_iterations must be an integer >= 1, got {em_iterations!r}"
        )
    value = int(em_iterations)
    if value < 1:
        raise ConfigurationError(
            f"em_iterations must be an integer >= 1, got {em_iterations!r}"
        )
    return value


def make_aggregator(
    name: str,
    *,
    trim_fraction: float = 0.1,
    huber_delta: float = 1.5,
    em_iterations: int = 5,
    model=None,
):
    """Build an aggregator by name, validating every numeric knob.

    ``reliability`` aggregators carry a
    :class:`~repro.agg.reliability.ReliabilityModel`; pass ``model`` to
    share one across planner/engine, otherwise a fresh model is made.
    """
    from repro.agg.reliability import ReliabilityAggregator, ReliabilityModel

    if name not in AGGREGATORS:
        raise ConfigurationError(
            f"unknown aggregator {name!r}; choose from {', '.join(AGGREGATORS)}"
        )
    # Knobs are validated even for strategies that ignore them: a CLI
    # typo like --trim-fraction 0.7 --aggregator huber should fail
    # loudly at admission, not silently do nothing.
    validate_trim_fraction(trim_fraction)
    validate_huber_delta(huber_delta)
    validate_em_iterations(em_iterations)
    if name == "uniform":
        return UniformAggregator()
    if name == "trimmed":
        return TrimmedAggregator(trim_fraction)
    if name == "huber":
        return HuberAggregator(huber_delta)
    if model is None:
        model = ReliabilityModel(em_iterations=em_iterations)
    return ReliabilityAggregator(model)
