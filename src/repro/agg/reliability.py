"""Joint per-worker reliability inference (T-Crowd style).

The model learns one precision ``rho_w`` per worker from *residual
consistency across attributes*: every answer after the first on a
``(object, attribute)`` tape is compared against the running mean of
the answers before it, the squared residual is variance-normalised for
the prefix length, and the normalised residuals are pooled per worker
across every attribute the worker ever touched.  A worker who is noisy
(or colluding on a shared bias) on *any* attribute accumulates large
residuals everywhere they answer — exactly the cross-attribute signal
T-Crowd exploits on tabular crowd data.

Precisions are crowd-relative: ``rho_w`` is the ratio of the crowd's
mean squared residual to worker ``w``'s, shrunk toward 1 by an
inverse-gamma-style prior so thin evidence cannot produce extreme
weights, and clamped to ``[floor, ceil]``.  An honest homogeneous crowd
therefore learns *equal* precisions and (via the equal-weights
fall-through in :func:`~repro.agg.base.weighted_mean`) aggregates
bitwise-identically to ``uniform``.

Two ingestion paths share the same state:

:meth:`observe`
    Streaming, prefix-residual form used by the serving engine's
    *serial sorted-key commit phase*.  Residuals depend only on the
    answer tape prefix — never on batch boundaries — so a resumed run
    that absorbs a journal tail and then re-purchases the remainder
    replays the *identical* float-addition sequence as an
    uninterrupted run (byte-identical checkpoints; property-tested).
:meth:`fit`
    Batch EM over complete recorded tapes, used offline by the planner:
    precision-weighted centers and per-worker residual moments are
    re-estimated alternately for a fixed iteration count.

Everything is deterministic: per-worker sums are plain serial float
accumulation in canonical (sorted-key, tape-index) order, and every
cross-worker reduction goes through ``math.fsum`` over sorted worker
ids, so no dict iteration order or arrival permutation can leak into
the result.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.agg.base import (
    Aggregator,
    UNATTRIBUTED,
    effective_sample_size,
    validate_em_iterations,
    weighted_mean,
)
from repro.errors import ConfigurationError


class ReliabilityModel:
    """Per-worker precision estimates from pooled residual moments.

    Parameters
    ----------
    em_iterations:
        Fixed sweep count for the batch :meth:`fit` (>= 1).
    prior_strength:
        Pseudo-observations shrinking every precision toward 1; thin
        evidence stays near neutral instead of exploding.
    floor, ceil:
        Hard clamp on learned precisions, bounding how much any single
        worker can be up- or down-weighted.
    gain_cap:
        Upper clamp on the allocator's effective-sample-size gain.
    """

    def __init__(
        self,
        em_iterations: int = 5,
        prior_strength: float = 2.0,
        floor: float = 0.05,
        ceil: float = 20.0,
        gain_cap: float = 4.0,
    ) -> None:
        self.em_iterations = validate_em_iterations(em_iterations)
        if not math.isfinite(prior_strength) or prior_strength <= 0:
            raise ConfigurationError(
                f"prior_strength must be finite and > 0, got {prior_strength!r}"
            )
        if not 0.0 < floor <= 1.0 <= ceil or not math.isfinite(ceil):
            raise ConfigurationError(
                f"need 0 < floor <= 1 <= ceil < inf, got {floor!r}, {ceil!r}"
            )
        if not math.isfinite(gain_cap) or gain_cap < 1.0:
            raise ConfigurationError(
                f"gain_cap must be finite and >= 1, got {gain_cap!r}"
            )
        self.prior_strength = float(prior_strength)
        self.floor = float(floor)
        self.ceil = float(ceil)
        self.gain_cap = float(gain_cap)
        #: Residual-observation count per worker id.
        self._n: dict[int, float] = {}
        #: Normalised squared-residual sum per worker id.
        self._ss: dict[int, float] = {}

    # -- ingestion ----------------------------------------------------

    def observe(
        self,
        values: Sequence[float],
        worker_ids: Sequence[int],
        start: int,
        from_index: int | None = None,
    ) -> int:
        """Absorb the tail of one key's answer tape, streaming.

        ``worker_ids`` aligns with ``values[start:]``.  Only indices
        ``>= max(from_index, start, 1)`` contribute (index 0 has no
        prefix to disagree with; ``from_index`` lets a resumed caller
        skip answers already absorbed).  Returns how many residuals
        were recorded.
        """
        first = max(int(from_index) if from_index is not None else 0, start, 1)
        total = len(values)
        if first >= total:
            return 0
        # Serial prefix sum in tape-index order: the same floats in the
        # same order no matter how purchases were chunked into waves.
        acc = 0.0
        for j in range(first):
            acc += float(values[j])
        recorded = 0
        for i in range(first, total):
            value = float(values[i])
            residual = value - acc / i
            u = (residual * residual) / (1.0 + 1.0 / i)
            wid = int(worker_ids[i - start])
            if wid != UNATTRIBUTED:
                self._n[wid] = self._n.get(wid, 0.0) + 1.0
                self._ss[wid] = self._ss.get(wid, 0.0) + u
                recorded += 1
            acc += value
        return recorded

    def fit(
        self,
        groups: Iterable[tuple[Sequence[float], Sequence[int]]],
        reset: bool = True,
    ) -> dict[int, float]:
        """Batch EM over complete tapes; returns the learned precisions.

        ``groups`` yields ``(values, worker_ids)`` per key — iterate
        them in a canonical (sorted-key) order for determinism.  Each
        sweep re-centers every key with the current precisions, then
        re-pools per-worker residual moments; ``em_iterations`` sweeps
        run unconditionally (no float-noise-sensitive stopping test).
        """
        tapes = [
            (np.asarray(values, dtype=np.float64), [int(w) for w in worker_ids])
            for values, worker_ids in groups
        ]
        if reset:
            self._n = {}
            self._ss = {}
        rho: dict[int, float] = {}
        for _ in range(self.em_iterations):
            n: dict[int, float] = {}
            ss: dict[int, float] = {}
            for values, worker_ids in tapes:
                count = values.size
                if count < 2:
                    continue
                weights = [rho.get(w, 1.0) if w != UNATTRIBUTED else 1.0
                           for w in worker_ids]
                center = weighted_mean(values, weights)
                # Finite-sample correction: with a uniform center,
                # E[(x_i - mean)^2] = sigma^2 (1 - 1/n).
                correction = count / (count - 1.0)
                for value, wid in zip(values.tolist(), worker_ids):
                    if wid == UNATTRIBUTED:
                        continue
                    residual = value - center
                    n[wid] = n.get(wid, 0.0) + 1.0
                    ss[wid] = ss.get(wid, 0.0) + residual * residual * correction
            self._n, self._ss = n, ss
            rho = self.precisions()
        return rho

    # -- estimates ----------------------------------------------------

    def _mean_square(self) -> float:
        """Crowd-wide mean normalised squared residual (fsum, sorted)."""
        wids = sorted(self._n)
        total_n = math.fsum(self._n[w] for w in wids)
        if total_n <= 0.0:
            return 0.0
        return math.fsum(self._ss[w] for w in wids) / total_n

    def precisions(self) -> dict[int, float]:
        """Clamped crowd-relative precision per observed worker."""
        s_bar = self._mean_square()
        if s_bar <= 0.0:
            return {wid: 1.0 for wid in self._n}
        a0 = self.prior_strength
        result: dict[int, float] = {}
        for wid in self._n:
            rho = ((self._n[wid] + 2.0 * a0) * s_bar) / (
                self._ss[wid] + 2.0 * a0 * s_bar
            )
            result[wid] = min(max(rho, self.floor), self.ceil)
        return result

    def weight(self, worker_id: int) -> float:
        """Aggregation weight for one worker (1.0 when unobserved)."""
        return self.precisions().get(int(worker_id), 1.0)

    def weights(self, worker_ids: Sequence[int]) -> list[float]:
        """Aggregation weights for one answer tape's worker ids."""
        rho = self.precisions()
        return [rho.get(int(w), 1.0) for w in worker_ids]

    @property
    def observed_workers(self) -> int:
        """How many distinct workers have contributed residuals."""
        return len(self._n)

    @property
    def observations(self) -> float:
        """Total residual observations absorbed (all workers)."""
        return math.fsum(self._n[w] for w in sorted(self._n))

    def gain(self, worker_ids: Sequence[int] | None = None) -> float:
        """Effective-sample-size gain of weighting over uniform.

        With per-worker variances ``s / rho_w``, a uniform mean over a
        worker multiset has variance ``~ mean(1/rho) * s / n`` while
        the precision-weighted mean has ``~ s / (n * mean(rho))`` — so
        one weighted answer is worth ``mean(rho) * mean(1/rho) >= 1``
        (AM–HM) uniform answers.  Pass the multiset of worker ids that
        answered one attribute for a per-attribute gain; default is the
        gain over all observed workers.  Clamped to ``[1, gain_cap]``.
        """
        rho_map = self.precisions()
        if worker_ids is None:
            rhos = [rho_map[w] for w in sorted(rho_map)]
        else:
            rhos = [rho_map.get(int(w), 1.0) for w in worker_ids]
        if not rhos:
            return 1.0
        mean_rho = math.fsum(rhos) / len(rhos)
        mean_inv = math.fsum(1.0 / r for r in rhos) / len(rhos)
        return min(max(mean_rho * mean_inv, 1.0), self.gain_cap)

    # -- durability ---------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe snapshot (floats round-trip exactly via repr)."""
        return {
            "n": [[wid, self._n[wid]] for wid in sorted(self._n)],
            "ss": [[wid, self._ss[wid]] for wid in sorted(self._ss)],
        }

    def restore_state(self, state: dict) -> None:
        self._n = {int(wid): float(value) for wid, value in state.get("n", [])}
        self._ss = {int(wid): float(value) for wid, value in state.get("ss", [])}


class ReliabilityAggregator(Aggregator):
    """Precision-weighted mean over a shared :class:`ReliabilityModel`."""

    name = "reliability"
    needs_workers = True

    def __init__(self, model: ReliabilityModel | None = None) -> None:
        self.model = model if model is not None else ReliabilityModel()

    def aggregate(self, values, worker_ids=None) -> float:
        if worker_ids is None:
            raise ConfigurationError(
                "reliability aggregation needs worker-attributed answers; "
                "the answer source provides no worker ids"
            )
        return weighted_mean(values, self.model.weights(worker_ids))

    def effective_count(self, values, worker_ids=None) -> float:
        if worker_ids is None:
            return float(len(values))
        return effective_sample_size(self.model.weights(worker_ids))
