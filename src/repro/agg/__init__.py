"""Pluggable answer aggregation: uniform, robust, reliability-weighted.

See :mod:`repro.agg.base` for the strategy protocol and determinism
contract, :mod:`repro.agg.reliability` for the T-Crowd-style joint
worker-reliability inference.
"""

from repro.agg.base import (
    AGGREGATORS,
    Aggregator,
    HuberAggregator,
    TrimmedAggregator,
    UNATTRIBUTED,
    UniformAggregator,
    effective_sample_size,
    make_aggregator,
    validate_em_iterations,
    validate_huber_delta,
    validate_trim_fraction,
    weighted_mean,
)
from repro.agg.reliability import ReliabilityAggregator, ReliabilityModel

__all__ = [
    "AGGREGATORS",
    "Aggregator",
    "HuberAggregator",
    "ReliabilityAggregator",
    "ReliabilityModel",
    "TrimmedAggregator",
    "UNATTRIBUTED",
    "UniformAggregator",
    "effective_sample_size",
    "make_aggregator",
    "validate_em_iterations",
    "validate_huber_delta",
    "validate_trim_fraction",
    "weighted_mean",
]
