"""Command-line interface: plan, evaluate and reproduce from a shell.

Examples::

    python -m repro plan --domain recipes --target protein \
        --b-obj 4 --b-prc 2000
    python -m repro evaluate --domain pictures --target bmi \
        --b-obj 4 --b-prc 2500 --objects 100 --compare
    python -m repro plan --domain recipes --target protein \
        --b-obj 4 --b-prc 2000 --catalog plans/
    python -m repro query --domain recipes --requests requests.json \
        --catalog plans/
    python -m repro sweep --domain recipes --target protein \
        --axis b_obj --values 0.4,1,2,4 --b-prc 2500
    python -m repro coverage --domain laptops --target price
    python -m repro tune --domain recipes --target protein \
        --total 10000 --objects 500

All money amounts are US cents, as everywhere in the library.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

from repro.agg import (
    AGGREGATORS,
    validate_em_iterations,
    validate_huber_delta,
    validate_trim_fraction,
)
from repro.catalog import (
    PlanCatalog,
    PlanRouter,
    RoutedSubQuery,
    StalenessPolicy,
    build_lineage,
    decompose,
    drift_stats,
    load_request_file,
    write_lineage,
)
from repro.core.disq import DisQParams
from repro.core.online import OnlineEvaluator, query_error
from repro.core.tuning import optimize_budget_split
from repro.crowd.faults import FaultProfile
from repro.crowd.platform import CrowdPlatform
from repro.crowd.recording import AnswerRecorder
from repro.domains import (
    make_houses_domain,
    make_laptops_domain,
    make_pictures_domain,
    make_recipes_domain,
    make_synthetic_domain,
)
from repro.durability import CrashInjector, durability_summary, run_disq
from repro.errors import CatalogError, ConfigurationError
from repro.experiments import (
    ExperimentConfig,
    coverage_experiment,
    render_series,
    render_table,
    sweep_b_obj,
    sweep_b_prc,
)
from repro.experiments.runner import make_query
from repro.obs import NULL_OBS, Observability
from repro.obs.manifest import build_manifest, write_manifest
from repro.serve import (
    AdmissionPolicy,
    ServeEngine,
    admit_and_serve,
    load_query_file,
)

#: Exit code for bad configuration (flags, budgets, checkpoint mismatch).
EXIT_CONFIGURATION_ERROR = 2
#: Exit code for an unexpected crash mid-run (incl. injected chaos);
#: distinct from configuration errors so wrappers can decide to resume.
EXIT_CRASH = 70

DOMAINS = {
    "pictures": make_pictures_domain,
    "recipes": make_recipes_domain,
    "houses": make_houses_domain,
    "laptops": make_laptops_domain,
    "synthetic": lambda n_objects, seed: make_synthetic_domain(
        n_objects=n_objects, seed=seed
    ),
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--domain", choices=sorted(DOMAINS), required=True, help="ground-truth world"
    )
    parser.add_argument(
        "--target",
        action="append",
        required=True,
        help="query attribute (repeatable for multi-target queries)",
    )
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    parser.add_argument(
        "--n-objects", type=int, default=300, help="domain size (objects)"
    )
    parser.add_argument(
        "--n1", type=int, default=80, help="statistics examples per pool (paper: 200)"
    )


def _add_manifest(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="collect metrics/phase timings and write a run-manifest JSON here",
    )


def _add_durability(parser: argparse.ArgumentParser, chaos: bool = False) -> None:
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="journal answers and checkpoint phase boundaries under DIR",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted run from its checkpoint (needs --checkpoint-dir)",
    )
    if chaos:
        parser.add_argument(
            "--chaos-after",
            type=int,
            metavar="N",
            default=None,
            help="fault injection: crash after N crowd interactions",
        )


def _add_aggregator(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--aggregator",
        choices=AGGREGATORS,
        default="uniform",
        help="answer aggregation strategy (uniform = the paper's mean; "
        "reliability learns per-worker trust and feeds the allocator)",
    )
    parser.add_argument(
        "--trim-fraction",
        type=float,
        default=0.1,
        metavar="F",
        help="fraction trimmed from each tail under --aggregator trimmed "
        "(in [0, 0.5))",
    )
    parser.add_argument(
        "--huber-delta",
        type=float,
        default=1.5,
        metavar="D",
        help="Huber clipping width in scaled-MAD units under "
        "--aggregator huber (> 0)",
    )
    parser.add_argument(
        "--em-iterations",
        type=int,
        default=5,
        metavar="N",
        help="EM sweeps for the reliability model (>= 1)",
    )


def _agg_params(args) -> dict:
    """Aggregation knobs for :class:`DisQParams`, validated at admission.

    Rejecting NaN/inf/out-of-range here (rather than deep in the
    planner) turns a typo'd flag into exit code 2 with a clear message
    before any money is spent.
    """
    return {
        "aggregator": getattr(args, "aggregator", "uniform"),
        "trim_fraction": validate_trim_fraction(
            getattr(args, "trim_fraction", 0.1)
        ),
        "huber_delta": validate_huber_delta(getattr(args, "huber_delta", 1.5)),
        "em_iterations": validate_em_iterations(
            getattr(args, "em_iterations", 5)
        ),
    }


def _make_obs(args) -> Observability:
    """A recording bundle when ``--manifest`` was given, else the no-op."""
    if getattr(args, "manifest", None):
        return Observability.collecting()
    return NULL_OBS


def _make_chaos(args) -> CrashInjector | None:
    """A crash injector when ``--chaos-after N`` was given, else ``None``."""
    if getattr(args, "chaos_after", None) is None:
        return None
    return CrashInjector(at_interactions=args.chaos_after)


def _validate_cents(name: str, value: float) -> float:
    """Admission-time budget validation: finite and non-negative.

    ``float("nan") < 0`` is False, so without an explicit finiteness
    check a NaN budget would sail through every downstream comparison
    and silently disable budget enforcement.
    """
    if not math.isfinite(value) or value < 0:
        raise ConfigurationError(
            f"{name} must be a finite, non-negative cent amount, got {value!r}"
        )
    return float(value)


def _parse_fault_profile(spec: str | None) -> FaultProfile | None:
    """``--fault-profile RATE[:LATENCY]`` into a uniform fault profile.

    ``RATE`` is the per-category fault rate in [0, 1); ``LATENCY`` the
    mean simulated answer latency in seconds (default 0 — faults
    without latency).  ``0`` (or omitting the flag) disables injection.
    """
    if spec is None:
        return None
    head, _, tail = spec.partition(":")
    try:
        rate = float(head)
        latency = float(tail) if tail else 0.0
    except ValueError:
        raise ConfigurationError(
            f"--fault-profile must be RATE or RATE:LATENCY, got {spec!r}"
        ) from None
    if not math.isfinite(rate) or not 0.0 <= rate < 1.0:
        raise ConfigurationError(f"fault rate must be in [0, 1), got {head!r}")
    if not math.isfinite(latency) or latency < 0:
        raise ConfigurationError(f"fault latency must be >= 0, got {tail!r}")
    if rate == 0.0 and latency == 0.0:
        return None
    return FaultProfile.uniform(rate, latency_mean=latency)


def _add_catalog(parser: argparse.ArgumentParser, staleness: bool = True) -> None:
    parser.add_argument(
        "--catalog",
        metavar="DIR",
        default=None,
        help="persistent plan catalog directory (store plans; reuse them "
        "across runs instead of re-spending B_prc)",
    )
    if staleness:
        parser.add_argument(
            "--max-age-s",
            type=float,
            default=None,
            metavar="SECONDS",
            help="catalog staleness: refresh entries older than this "
            "(default: no age limit)",
        )
        parser.add_argument(
            "--max-drift",
            type=float,
            default=None,
            metavar="Z",
            help="catalog staleness: refresh entries whose recorded target "
            "moments drifted beyond this many (recorded) sigmas "
            "(default: no drift check)",
        )


def _staleness_policy(args) -> StalenessPolicy:
    return StalenessPolicy(
        max_age_s=getattr(args, "max_age_s", None),
        max_drift=getattr(args, "max_drift", None),
    )


def _make_router(
    args, obs: Observability, domain, platform, params: DisQParams
) -> PlanRouter | None:
    """A catalog-backed plan router when ``--catalog DIR`` was given."""
    if not getattr(args, "catalog", None):
        return None
    catalog = PlanCatalog(args.catalog, policy=_staleness_policy(args), obs=obs)
    return PlanRouter(
        catalog, domain, platform, args.b_obj, args.b_prc, params
    )


def _render_routes(router: PlanRouter) -> str:
    """The catalog route table: one line per routed target tuple."""
    lines = ["catalog routes:"]
    for decision in router.decisions:
        lines.append(
            f"  {'+'.join(decision.targets):<24} {decision.describe()}"
        )
    avoided = sum(d.avoided_cents for d in router.decisions)
    spent = sum(d.spent_cents for d in router.decisions)
    lines.append(
        f"  B_prc: spent {spent:.1f}c, avoided {avoided:.1f}c via catalog hits"
    )
    return "\n".join(lines)


def _routes_summary(routed: list[RoutedSubQuery]) -> list[dict]:
    """JSON-friendly per-sub-query route records for the manifest."""
    return [
        {
            "sub_id": item.sub.sub_id,
            "target": item.sub.target,
            "route": item.routed.route,
            "avoided_cents": item.routed.avoided_cents,
            "spent_cents": item.routed.spent_cents,
            "stale_reason": item.routed.stale_reason,
            "reasoning": item.sub.reasoning,
        }
        for item in routed
    ]


def _export_lineage(args, router: PlanRouter) -> None:
    """Write one lineage graph JSON per routed target tuple."""
    if not getattr(args, "lineage_dir", None):
        return
    directory = Path(args.lineage_dir)
    directory.mkdir(parents=True, exist_ok=True)
    for decision in router.decisions:
        name = f"{args.domain}.{'+'.join(decision.targets)}.lineage.json"
        path = write_lineage(directory / name, build_lineage(decision.plan))
        print(f"lineage graph written to {path}")


def _check_durability_flags(args) -> None:
    if getattr(args, "resume", False) and not getattr(args, "checkpoint_dir", None):
        raise ConfigurationError("--resume requires --checkpoint-dir")


def _emit_manifest(
    args, obs: Observability, label: str, plan=None, extra=None, durability=None
) -> None:
    """Write the run manifest when ``--manifest PATH`` was given."""
    if not getattr(args, "manifest", None):
        return
    manifest = build_manifest(
        label, obs, plan=plan, extra=extra, durability=durability
    )
    path = write_manifest(args.manifest, manifest)
    print(f"\nrun manifest written to {path}")


def _resume_hint(args, argv: list[str]) -> str | None:
    """A copy-pasteable resume command after a crash, when possible."""
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if not checkpoint_dir or not any(Path(checkpoint_dir).glob("*")):
        return None
    cleaned: list[str] = []
    skip = False
    for token in argv:
        if skip:
            skip = False
            continue
        # Drop the crash injection and any prior --resume; keep the rest.
        if token == "--chaos-after":
            skip = True
            continue
        if token.startswith("--chaos-after=") or token == "--resume":
            continue
        cleaned.append(token)
    return "python -m repro " + " ".join(cleaned + ["--resume"])


def _build(args, obs: Observability | None = None) -> tuple:
    domain = DOMAINS[args.domain](n_objects=args.n_objects, seed=args.seed)
    platform = CrowdPlatform(
        domain, recorder=AnswerRecorder(), seed=args.seed, obs=obs
    )
    query = make_query(domain, tuple(args.target))
    return domain, platform, query


def cmd_plan(args) -> int:
    """Run the offline phase and print the plan."""
    _check_durability_flags(args)
    obs = _make_obs(args)
    domain, platform, query = _build(args, obs)
    params = DisQParams(n1=args.n1, **_agg_params(args))
    run = run_disq(
        platform,
        query,
        args.b_obj,
        args.b_prc,
        params,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        chaos=_make_chaos(args),
    )
    plan = run.plan
    if run.resumed:
        print(f"resumed from checkpoint after phase: {run.resumed_from}")
    print(plan.describe())
    router = _make_router(args, obs, domain, platform, params)
    if router is not None:
        # Store under the same key ``repro query`` / ``repro serve``
        # will look up, so a plan built here hits there.
        targets = tuple(args.target)
        path = router.catalog.store(
            router.key_for(targets), plan, stats=drift_stats(domain, targets)
        )
        print(f"plan stored in catalog: {path}")
    _emit_manifest(
        args,
        obs,
        f"plan:{args.domain}:{','.join(args.target)}",
        plan=plan,
        durability=durability_summary(run) if args.checkpoint_dir else None,
    )
    return 0


def cmd_evaluate(args) -> int:
    """Plan, then run the online phase and report the query error."""
    _check_durability_flags(args)
    obs = _make_obs(args)
    domain, platform, query = _build(args, obs)
    params = DisQParams(n1=args.n1, **_agg_params(args))
    run = run_disq(
        platform,
        query,
        args.b_obj,
        args.b_prc,
        params,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        chaos=_make_chaos(args),
    )
    plan = run.plan
    if run.resumed:
        print(f"resumed from checkpoint after phase: {run.resumed_from}")
    print(plan.describe())
    object_ids = range(min(args.objects, domain.n_objects()))
    # The online phase reuses the planner's fitted reliability model
    # (when the strategy needs one), so the worker trust the offline
    # tapes taught carries into every online weighted mean.
    aggregator = params.build_aggregator(
        model=getattr(run.planner, "reliability_model", None)
    )
    with obs.tracer.span("online"):
        estimates = OnlineEvaluator(
            platform.fork(), plan, aggregator=aggregator
        ).evaluate(object_ids)
    error = query_error(domain, estimates, object_ids, query)
    print(f"\nDisQ weighted query error: {error:.4f}")
    extra = {"query_error": error}
    if args.compare:
        from repro.core.baselines import NaiveAverage

        naive_plan = NaiveAverage(platform.fork(), query, args.b_obj).preprocess()
        naive = OnlineEvaluator(platform.fork(), naive_plan).evaluate(object_ids)
        naive_error = query_error(domain, naive, object_ids, query)
        print(f"NaiveAverage query error:  {naive_error:.4f}")
        extra["naive_query_error"] = naive_error
    _emit_manifest(
        args, obs, f"evaluate:{args.domain}:{','.join(args.target)}",
        plan=plan, extra=extra,
        durability=durability_summary(run) if args.checkpoint_dir else None,
    )
    return 0


def cmd_serve(args) -> int:
    """Serve a query workload through the batched engine."""
    import json

    _check_durability_flags(args)
    _validate_cents("--b-obj", args.b_obj)
    _validate_cents("--b-prc", args.b_prc)
    faults = _parse_fault_profile(args.fault_profile)
    params = DisQParams(n1=args.n1, **_agg_params(args))
    obs = _make_obs(args)
    domain = DOMAINS[args.domain](n_objects=args.n_objects, seed=args.seed)
    platform = CrowdPlatform(
        domain, recorder=AnswerRecorder(), seed=args.seed, obs=obs
    )
    requests = load_query_file(args.queries)
    router = _make_router(args, obs, domain, platform, params)
    admission_flags = (
        args.admit_reject_depth,
        args.admit_degrade_depth,
        args.admit_headroom,
    )
    decisions: dict[str, int] | None = None
    # The engine owns journals, shard processes and a thread pool; the
    # context manager guarantees none of them outlive the command.
    with ServeEngine(
        platform,
        workers=args.workers,
        max_queue=args.max_queue,
        wave_size=args.wave_size,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        faults=faults,
        chaos=_make_chaos(args),
        shed_expired=args.shed_expired,
        shards=args.shards,
        shard_processes=args.shard_processes,
        # A reliability aggregator starts neutral and learns worker
        # trust online, from the spans the engine commits.
        aggregator=params.build_aggregator(),
        # With a catalog, plan lookup happens inside submit() through
        # the router (cache hit, staleness refresh, or fresh plan).
        plan_source=router.plan_source if router is not None else None,
    ) as engine:
        if engine.resumed:
            print(
                f"resumed serving run: {engine.cache.total_answers} cached "
                f"answers restored"
            )
        # One offline plan per distinct target set; queries sharing
        # targets share the plan (and, through the cache, each other's
        # answers).  With a catalog the router resolves each set —
        # routing here keeps the plan phase's timing span honest, and
        # the engine's plan_source then hits the router's memo.
        plans: dict[tuple[str, ...], object] = {}
        with obs.tracer.span("serve.plan"):
            for request in requests:
                key = request.targets
                if key not in plans:
                    if router is not None:
                        plans[key] = router.acquire(key).plan
                    else:
                        run = run_disq(
                            platform,
                            make_query(domain, key),
                            args.b_obj,
                            args.b_prc,
                            params,
                        )
                        plans[key] = run.plan
        if any(flag is not None for flag in admission_flags):
            policy = AdmissionPolicy(
                reject_depth=(
                    args.admit_reject_depth
                    if args.admit_reject_depth is not None
                    else AdmissionPolicy.reject_depth
                ),
                degrade_depth=(
                    args.admit_degrade_depth
                    if args.admit_degrade_depth is not None
                    else AdmissionPolicy.degrade_depth
                ),
                min_headroom_s=(
                    args.admit_headroom
                    if args.admit_headroom is not None
                    else AdmissionPolicy.min_headroom_s
                ),
            )
            arrivals = [
                (request, plans[request.targets]) for request in requests
            ]
            report, decisions = admit_and_serve(engine, arrivals, policy)
        else:
            for request in requests:
                if router is not None:
                    engine.submit(request)
                else:
                    engine.submit(request, plans[request.targets])
            report = engine.run()
    print(report.render())
    if router is not None:
        print(_render_routes(router))
    if decisions is not None:
        print(
            f"  admission: {decisions['admit']} admitted, "
            f"{decisions['degrade']} degraded to cache-only, "
            f"{decisions['reject']} rejected"
        )
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        print(f"full serve report written to {out}")
    # Keep the manifest extra compact: the per-object estimate vectors
    # live in --out, not in the manifest.
    summary = report.to_dict()
    for result in summary["results"]:
        result.pop("estimates", None)
    extra: dict = {"report": summary}
    if router is not None:
        extra["routes"] = [
            {
                "targets": list(decision.targets),
                "route": decision.route,
                "avoided_cents": decision.avoided_cents,
                "spent_cents": decision.spent_cents,
                "stale_reason": decision.stale_reason,
            }
            for decision in router.decisions
        ]
    _emit_manifest(
        args, obs, f"serve:{args.domain}:{len(requests)}q", extra=extra
    )
    return 0


def cmd_query(args) -> int:
    """Serve a declarative multi-target request spec via the catalog."""
    import json

    _validate_cents("--b-obj", args.b_obj)
    _validate_cents("--b-prc", args.b_prc)
    params = DisQParams(n1=args.n1, **_agg_params(args))
    obs = _make_obs(args)
    domain = DOMAINS[args.domain](n_objects=args.n_objects, seed=args.seed)
    platform = CrowdPlatform(
        domain, recorder=AnswerRecorder(), seed=args.seed, obs=obs
    )
    router = _make_router(args, obs, domain, platform, params)
    assert router is not None  # --catalog is required for this command
    specs = load_request_file(args.requests)
    # Decompose every request into per-target sub-queries and route
    # each through the catalog *before* serving: plan money is settled
    # (hit / refresh / fresh) up front, so the serve phase below spends
    # only online B_obj cents.
    routed: list[RoutedSubQuery] = []
    with obs.tracer.span("query.route"):
        for spec in specs:
            routed.extend(router.route_all(decompose(spec)))
    with ServeEngine(
        platform,
        workers=args.workers,
        max_queue=args.max_queue,
        wave_size=args.wave_size,
        aggregator=params.build_aggregator(),
        plan_source=router.plan_source,
    ) as engine:
        # Submission goes through the engine's plan_source hook; the
        # router's memo guarantees each sub-query resolves to the very
        # plan its route decision recorded.
        for item in routed:
            engine.submit(item.sub.to_request())
        report = engine.run()
    print(
        f"{len(specs)} request(s) decomposed into {len(routed)} "
        f"sub-queries"
    )
    print("route table:")
    for item in routed:
        print(f"  {item.sub.sub_id:<24} {item.routed.describe()}")
    print(_render_routes(router))
    print()
    print(report.render())
    _export_lineage(args, router)
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        print(f"full serve report written to {out}")
    summary = report.to_dict()
    for result in summary["results"]:
        result.pop("estimates", None)
    _emit_manifest(
        args,
        obs,
        f"query:{args.domain}:{len(specs)}r",
        extra={"report": summary, "routes": _routes_summary(routed)},
    )
    return 0


def cmd_sweep(args) -> int:
    """Sweep one budget axis across algorithms and print the series."""
    _check_durability_flags(args)
    obs = _make_obs(args)
    domain, _, query = _build(args)
    config = ExperimentConfig(
        n_objects=args.n_objects,
        n1=args.n1,
        repetitions=args.repetitions,
        eval_objects=args.objects,
    )
    values = [float(v) for v in args.values.split(",")]
    algorithms = args.algorithms.split(",")
    if args.axis == "b_obj":
        series = sweep_b_obj(
            algorithms, domain, query, values, args.b_prc, config, obs=obs,
            checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        )
        print(render_series(series, "B_obj(c)"))
    else:
        series = sweep_b_prc(
            algorithms, domain, query, args.b_obj, values, config, obs=obs,
            checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        )
        print(render_series(series, "B_prc(c)"))
    _emit_manifest(
        args,
        obs,
        f"sweep:{args.axis}:{args.domain}:{','.join(args.target)}",
        extra={
            "axis": args.axis,
            "values": values,
            "algorithms": algorithms,
            # inf marks infeasible points; JSON has no inf, so use null.
            "series": {
                name: [
                    [budget, None if math.isinf(error) else error]
                    for budget, error in points
                ]
                for name, points in series.items()
            },
        },
    )
    return 0


def cmd_coverage(args) -> int:
    """Run the gold-standard coverage experiment for one target."""
    domain, _, _ = _build(args)
    config = ExperimentConfig(
        n_objects=args.n_objects, n1=args.n1, repetitions=args.repetitions
    )
    result = coverage_experiment(
        domain, args.target[0], args.b_obj, args.b_prc, config
    )
    print(
        render_table(
            ["measure", "DisQ", "naive"],
            [
                ["per-run coverage", result.coverage_disq, result.coverage_naive],
                [
                    "union coverage",
                    result.union_coverage_disq,
                    result.union_coverage_naive,
                ],
            ],
            precision=2,
        )
    )
    missing = sorted(result.gold - result.discovered_disq)
    if missing:
        print(f"missing from DisQ: {', '.join(missing)}")
    return 0


def cmd_tune(args) -> int:
    """Auto-split one total budget into (B_prc, B_obj)."""
    domain, platform, query = _build(args)
    best, grid = optimize_budget_split(
        platform,
        domain,
        query,
        total_cents=args.total,
        n_objects=args.objects,
        params=DisQParams(n1=args.n1),
    )
    print(
        render_table(
            ["B_obj(c)", "B_prc(c)", "pilot error"],
            [[s.b_obj_cents, s.b_prc_cents, s.pilot_error] for s in grid],
            title=f"budget splits for total {args.total:g}c over {args.objects} objects",
        )
    )
    print(
        f"\nbest: B_obj={best.b_obj_cents:g}c/object, "
        f"B_prc={best.b_prc_cents:g}c (pilot error {best.pilot_error:.4f})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DisQ: dismantling complicated query attributes with crowd",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser("plan", help="run the offline phase, print the plan")
    _add_common(plan)
    plan.add_argument("--b-obj", type=float, default=4.0, help="online cents/object")
    plan.add_argument("--b-prc", type=float, default=2000.0, help="offline cents")
    _add_aggregator(plan)
    _add_manifest(plan)
    _add_durability(plan, chaos=True)
    _add_catalog(plan, staleness=False)
    plan.set_defaults(handler=cmd_plan)

    evaluate = commands.add_parser("evaluate", help="plan + online phase + error")
    _add_common(evaluate)
    evaluate.add_argument("--b-obj", type=float, default=4.0)
    evaluate.add_argument("--b-prc", type=float, default=2000.0)
    evaluate.add_argument("--objects", type=int, default=100, help="objects to evaluate")
    evaluate.add_argument(
        "--compare", action="store_true", help="also run NaiveAverage"
    )
    _add_aggregator(evaluate)
    _add_manifest(evaluate)
    _add_durability(evaluate, chaos=True)
    evaluate.set_defaults(handler=cmd_evaluate)

    serve = commands.add_parser(
        "serve", help="serve a query workload with the batched engine"
    )
    serve.add_argument(
        "--domain", choices=sorted(DOMAINS), required=True, help="ground-truth world"
    )
    serve.add_argument(
        "--queries", required=True, metavar="PATH", help="queries.json workload"
    )
    serve.add_argument("--workers", type=int, default=1, help="scheduler threads")
    serve.add_argument(
        "--max-queue", type=int, default=64, help="backpressure bound (shed beyond)"
    )
    serve.add_argument(
        "--wave-size", type=int, default=None, help="queries per wave (default: all)"
    )
    serve.add_argument("--seed", type=int, default=1, help="simulation seed")
    serve.add_argument("--n-objects", type=int, default=300, help="domain size")
    serve.add_argument("--n1", type=int, default=80, help="statistics examples/pool")
    serve.add_argument("--b-obj", type=float, default=4.0, help="online cents/object")
    serve.add_argument("--b-prc", type=float, default=2000.0, help="offline cents")
    serve.add_argument(
        "--out", metavar="PATH", default=None, help="write the full report JSON here"
    )
    serve.add_argument(
        "--fault-profile",
        metavar="RATE[:LATENCY]",
        default=None,
        help="inject crowd faults: uniform fault rate in [0,1), optional "
        "mean simulated latency seconds (0 disables)",
    )
    serve.add_argument(
        "--shed-expired",
        action="store_true",
        help="shed (instead of degrading) queries whose deadline already "
        "passed when their wave formed",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="shard the cache and wave execution across N key-hashed "
        "partitions (0 = unsharded; results are byte-identical either way)",
    )
    serve.add_argument(
        "--shard-processes",
        action="store_true",
        help="run shard generation in forked OS processes (falls back to "
        "in-process threads where fork is unavailable)",
    )
    serve.add_argument(
        "--admit-reject-depth",
        type=int,
        default=None,
        metavar="N",
        help="admission front door: reject (429-style) at this combined "
        "queue depth; setting any --admit-* flag enables the async "
        "admission layer",
    )
    serve.add_argument(
        "--admit-degrade-depth",
        type=int,
        default=None,
        metavar="N",
        help="admission front door: admit cache-only (degrade rather than "
        "buy) at this combined queue depth",
    )
    serve.add_argument(
        "--admit-headroom",
        type=float,
        default=None,
        metavar="SECONDS",
        help="admission front door: degrade queries whose deadline headroom "
        "is below this many seconds",
    )
    _add_aggregator(serve)
    _add_manifest(serve)
    _add_durability(serve, chaos=True)
    _add_catalog(serve)
    serve.set_defaults(handler=cmd_serve)

    query = commands.add_parser(
        "query",
        help="serve a declarative multi-target request spec through the "
        "plan catalog",
    )
    query.add_argument(
        "--domain", choices=sorted(DOMAINS), required=True, help="ground-truth world"
    )
    query.add_argument(
        "--requests",
        required=True,
        metavar="PATH",
        help="request-spec JSON: a list of {id, targets, objects, "
        "predicates?, deadline_s?} documents",
    )
    query.add_argument(
        "--catalog",
        required=True,
        metavar="DIR",
        help="persistent plan catalog directory (created on first store)",
    )
    query.add_argument(
        "--max-age-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="catalog staleness: refresh entries older than this",
    )
    query.add_argument(
        "--max-drift",
        type=float,
        default=None,
        metavar="Z",
        help="catalog staleness: refresh entries whose recorded target "
        "moments drifted beyond this many (recorded) sigmas",
    )
    query.add_argument("--workers", type=int, default=1, help="scheduler threads")
    query.add_argument(
        "--max-queue", type=int, default=64, help="backpressure bound (shed beyond)"
    )
    query.add_argument(
        "--wave-size", type=int, default=None, help="queries per wave (default: all)"
    )
    query.add_argument("--seed", type=int, default=1, help="simulation seed")
    query.add_argument("--n-objects", type=int, default=300, help="domain size")
    query.add_argument("--n1", type=int, default=80, help="statistics examples/pool")
    query.add_argument("--b-obj", type=float, default=4.0, help="online cents/object")
    query.add_argument("--b-prc", type=float, default=2000.0, help="offline cents")
    query.add_argument(
        "--lineage-dir",
        metavar="DIR",
        default=None,
        help="export each routed plan's attribute-lineage graph JSON here",
    )
    query.add_argument(
        "--out", metavar="PATH", default=None, help="write the full report JSON here"
    )
    _add_aggregator(query)
    _add_manifest(query)
    query.set_defaults(handler=cmd_query)

    sweep = commands.add_parser("sweep", help="budget sweep across algorithms")
    _add_common(sweep)
    sweep.add_argument("--axis", choices=("b_obj", "b_prc"), required=True)
    sweep.add_argument("--values", required=True, help="comma-separated cents")
    sweep.add_argument("--b-obj", type=float, default=4.0)
    sweep.add_argument("--b-prc", type=float, default=2500.0)
    sweep.add_argument("--objects", type=int, default=60)
    sweep.add_argument("--repetitions", type=int, default=2)
    sweep.add_argument(
        "--algorithms", default="DisQ,SimpleDisQ,NaiveAverage",
        help="comma-separated registry names",
    )
    _add_manifest(sweep)
    _add_durability(sweep)
    sweep.set_defaults(handler=cmd_sweep)

    coverage = commands.add_parser("coverage", help="gold-standard coverage")
    _add_common(coverage)
    coverage.add_argument("--b-obj", type=float, default=4.0)
    coverage.add_argument("--b-prc", type=float, default=6000.0)
    coverage.add_argument("--repetitions", type=int, default=3)
    coverage.set_defaults(handler=cmd_coverage)

    tune = commands.add_parser("tune", help="auto-split a total budget")
    _add_common(tune)
    tune.add_argument("--total", type=float, required=True, help="total cents")
    tune.add_argument("--objects", type=int, required=True, help="database size")
    tune.set_defaults(handler=cmd_tune)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point (``python -m repro ...``).

    Exit codes: 0 on success, :data:`EXIT_CONFIGURATION_ERROR` (2) for
    bad configuration, :data:`EXIT_CRASH` (70) for an unexpected crash
    mid-run — in which case a ready-to-paste ``--resume`` command is
    printed when a checkpoint directory holds recoverable state.
    """
    effective_argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = build_parser().parse_args(effective_argv)
    try:
        return args.handler(args)
    except CatalogError as exc:
        # Catalog damage or contention is an operator problem, never a
        # silently-served stale plan: same exit code as bad flags.
        print(f"catalog error: {exc}", file=sys.stderr)
        return EXIT_CONFIGURATION_ERROR
    except ConfigurationError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_CONFIGURATION_ERROR
    except Exception as exc:  # noqa: BLE001 - crash boundary by design
        print(f"crashed: {exc}", file=sys.stderr)
        hint = _resume_hint(args, effective_argv)
        if hint:
            print(f"resume with: {hint}", file=sys.stderr)
        return EXIT_CRASH


if __name__ == "__main__":
    sys.exit(main())
