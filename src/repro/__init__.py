"""DisQ — Dismantling Complicated Query Attributes with Crowd.

A complete reproduction of Laadan & Milo, EDBT 2015: crowd-based query
evaluation where hard query attributes are first *dismantled* by the
crowd into finer, easier, correlated attributes, and the online
per-object budget is optimally distributed across them.

Quickstart::

    from repro import (
        CrowdPlatform, DisQPlanner, OnlineEvaluator, Query,
        make_recipes_domain, default_weights, query_error,
    )

    domain = make_recipes_domain(seed=1)
    platform = CrowdPlatform(domain, seed=1)
    query = Query(
        targets=("protein",),
        weights=default_weights(domain, ("protein",)),
    )
    planner = DisQPlanner(
        platform, query, b_obj_cents=4.0, b_prc_cents=1500.0,
    )
    plan = planner.preprocess()          # the offline phase
    online = OnlineEvaluator(platform.fork(), plan)
    estimates = online.evaluate(range(50))   # the online phase
    print(query_error(domain, estimates, range(50), query))
"""

from repro.core import (
    BudgetDistribution,
    DisQParams,
    DisQPlanner,
    EstimationFormula,
    NaiveAverage,
    OnlineEvaluator,
    PreprocessingPlan,
    Query,
    StatisticsStore,
    make_full_planner,
    make_naive_estimations_planner,
    make_one_connection_planner,
    make_only_query_attributes_planner,
    make_simple_disq_planner,
    query_error,
    run_totally_separated,
)
from repro.core.online import default_weights
from repro.crowd import (
    AnswerRecorder,
    AttributeNormalizer,
    Budget,
    CrowdPlatform,
    FaultProfile,
    FaultRates,
    NormalizationMode,
    PriceSchedule,
    ResilienceReport,
    RetryPolicy,
    WorkerCircuitBreaker,
    WorkerPool,
)
from repro.data import DataTable, parse_query
from repro.domains import (
    Domain,
    GaussianDomain,
    make_houses_domain,
    make_laptops_domain,
    make_pictures_domain,
    make_recipes_domain,
    make_synthetic_domain,
)
from repro.errors import (
    BudgetExhaustedError,
    ConfigurationError,
    CrowdFaultError,
    CrowdTimeoutError,
    DomainError,
    MalformedAnswerError,
    PlanningError,
    QueryError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "AnswerRecorder",
    "AttributeNormalizer",
    "Budget",
    "BudgetDistribution",
    "BudgetExhaustedError",
    "ConfigurationError",
    "CrowdFaultError",
    "CrowdPlatform",
    "CrowdTimeoutError",
    "DataTable",
    "DisQParams",
    "DisQPlanner",
    "Domain",
    "DomainError",
    "EstimationFormula",
    "FaultProfile",
    "FaultRates",
    "GaussianDomain",
    "MalformedAnswerError",
    "NaiveAverage",
    "NormalizationMode",
    "OnlineEvaluator",
    "PlanningError",
    "PreprocessingPlan",
    "PriceSchedule",
    "Query",
    "QueryError",
    "ReproError",
    "ResilienceReport",
    "RetryPolicy",
    "StatisticsStore",
    "WorkerCircuitBreaker",
    "WorkerPool",
    "default_weights",
    "make_full_planner",
    "make_houses_domain",
    "make_laptops_domain",
    "make_naive_estimations_planner",
    "make_one_connection_planner",
    "make_only_query_attributes_planner",
    "make_pictures_domain",
    "make_recipes_domain",
    "make_simple_disq_planner",
    "make_synthetic_domain",
    "parse_query",
    "query_error",
    "run_totally_separated",
]
