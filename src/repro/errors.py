"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  The sub-classes mirror the main
failure categories of the system: budget exhaustion on the crowd
platform, malformed queries, and misconfigured domains or algorithms.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BudgetExhaustedError(ReproError):
    """Raised when a crowd task would exceed the remaining budget.

    Attributes
    ----------
    requested:
        Cost (in cents) of the task that could not be afforded.
    remaining:
        Budget (in cents) that was left when the task was attempted.
    """

    def __init__(self, requested: float, remaining: float) -> None:
        super().__init__(
            f"crowd task costing {requested:.2f}c exceeds remaining "
            f"budget of {remaining:.2f}c"
        )
        self.requested = requested
        self.remaining = remaining


class CrowdFaultError(ReproError):
    """Base class for operational crowd faults (timeouts, bad answers).

    Raised by the platform's resilience layer once its retry policy is
    exhausted; planners may catch this to degrade gracefully instead of
    aborting the whole run.
    """


class CrowdTimeoutError(CrowdFaultError):
    """Raised when workers repeatedly time out or abandon a question.

    Attributes
    ----------
    category:
        Question category ("value", "dismantle", ...).
    attempts:
        How many times the question was attempted before giving up.
    """

    def __init__(self, category: str, attempts: int) -> None:
        super().__init__(
            f"{category} question failed: no usable answer after "
            f"{attempts} attempt(s)"
        )
        self.category = category
        self.attempts = attempts


class MalformedAnswerError(CrowdFaultError):
    """Raised when a crowd answer is unusable (NaN, out-of-range, wrong type).

    Attributes
    ----------
    category:
        Question category the bad answer came from.
    answer:
        The offending raw answer (or a description of it).
    """

    def __init__(self, category: str, answer: object) -> None:
        super().__init__(f"malformed {category} answer: {answer!r}")
        self.category = category
        self.answer = answer


class QueryError(ReproError):
    """Raised when a query string cannot be parsed or is semantically invalid."""


class DomainError(ReproError):
    """Raised when a domain is queried about an unknown object or attribute."""


class UnknownAttributeError(DomainError):
    """Raised when an attribute name is not part of the domain's universe."""

    def __init__(self, attribute: str) -> None:
        super().__init__(f"unknown attribute: {attribute!r}")
        self.attribute = attribute


class UnknownObjectError(DomainError):
    """Raised when an object identifier is not part of the domain."""

    def __init__(self, object_id: object) -> None:
        super().__init__(f"unknown object: {object_id!r}")
        self.object_id = object_id


class ConfigurationError(ReproError):
    """Raised when an algorithm or experiment is configured inconsistently."""


class DurabilityError(ReproError):
    """Base class for crash-safety failures (journal and checkpoints)."""


class JournalCorruptionError(DurabilityError):
    """Raised when a write-ahead journal cannot be replayed.

    A *trailing* half-written record is not corruption — the journal
    detects it by checksum and truncates it on open.  This error means
    the damage is unrecoverable: a bad checksum or sequence gap in the
    middle of the file, or replayed records that contradict each other.
    """


class CheckpointError(DurabilityError):
    """Raised when a pipeline checkpoint cannot be loaded or applied.

    Typical causes: a schema-version mismatch, or resuming with a
    different query/budget/seed configuration than the checkpointed run.
    """


class PlanningError(ReproError):
    """Raised when the preprocessing phase cannot produce a valid plan."""


class CatalogError(ReproError):
    """Base class for plan-catalog failures (load, refresh, integrity).

    The CLI maps every catalog error to exit code 2: a broken catalog
    is a configuration problem the operator must resolve — the system
    never silently re-plans over (or serves from) an entry it cannot
    trust.
    """


class CatalogCorruptionError(CatalogError):
    """Raised when a catalog entry file cannot be read back intact.

    Covers torn or truncated files (invalid JSON), checksum mismatches
    and schema-version drift.  Unlike the answer journal's torn *tail*
    — which is expected after a crash and repaired on open — a catalog
    entry is written atomically, so any damage means the file was
    tampered with or the storage failed; the entry must be rebuilt
    explicitly, never trusted.
    """


class CatalogMismatchError(CatalogError):
    """Raised when an entry's recorded key disagrees with the request.

    The entry file decoded cleanly but was written for a different
    (domain, targets, config-fingerprint) key than the one that
    resolved to it — a renamed or copied file, or a digest collision.
    Serving it would silently answer with a plan built under different
    budgets, seed or planner parameters.
    """


class CatalogLockError(CatalogError):
    """Raised when a refresh lock is already held for an entry.

    Two processes noticing the same stale entry must not both re-spend
    ``B_prc`` re-planning it; the loser surfaces this error instead of
    silently serving the stale plan it just declared unfit.
    """
