"""The crash-safe DisQ entry point: :func:`run_disq`.

Given a checkpoint directory, :func:`run_disq` arranges the full
durability stack around one :class:`~repro.core.disq.DisQPlanner` run:

* a write-ahead :class:`~repro.durability.journal.Journal` under
  ``<dir>/journal.jsonl`` receives every crowd interaction before it is
  applied;
* a :class:`~repro.durability.checkpoint.CheckpointStore` under
  ``<dir>/disq.checkpoint.json`` captures the complete deterministic
  state at every phase boundary;
* with ``resume=True`` an interrupted run restores the checkpoint and
  re-executes only the remaining phases — producing a plan, model and
  ledger bit-identical to a run that never crashed, with zero
  re-purchased answers (the journal and recorder tapes make replayed
  questions free).

Without a checkpoint directory the function degrades to a plain
planner run, so callers can use one code path for both modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.disq import DisQParams, DisQPlanner
from repro.core.model import PreprocessingPlan, Query
from repro.crowd.platform import CrowdPlatform
from repro.durability.checkpoint import CheckpointStore
from repro.durability.journal import Journal

#: File names used inside a checkpoint directory.
CHECKPOINT_FILENAME = "disq.checkpoint.json"
JOURNAL_FILENAME = "journal.jsonl"


@dataclass
class RecoveredRun:
    """The outcome of one (possibly resumed) crash-safe planner run.

    Attributes
    ----------
    plan:
        The finished preprocessing plan.
    planner:
        The planner that produced it (its forked platform carries the
        ledger and recorder — useful for audits and the online phase).
    resumed_from:
        Phase name the run resumed from, or ``None`` for a fresh run.
    journal_records:
        Committed journal records after the run (0 when unjournaled).
    journal_truncated_bytes:
        Bytes of torn trailing record the journal discarded on open.
    checkpoint_path / journal_path:
        Where the durability artifacts live (``None`` without a
        checkpoint directory).
    """

    plan: PreprocessingPlan
    planner: DisQPlanner
    resumed_from: str | None = None
    journal_records: int = 0
    journal_truncated_bytes: int = 0
    checkpoint_path: Path | None = None
    journal_path: Path | None = None

    @property
    def resumed(self) -> bool:
        """Whether this run continued an interrupted one."""
        return self.resumed_from is not None


def run_disq(
    platform: CrowdPlatform,
    query: Query,
    b_obj_cents: float,
    b_prc_cents: float,
    params: DisQParams | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    chaos: object | None = None,
) -> RecoveredRun:
    """Run the DisQ offline phase with optional crash safety.

    With ``checkpoint_dir`` set, every crowd interaction is journaled
    write-ahead and every phase boundary checkpointed atomically; pass
    ``resume=True`` after a crash to continue from the saved state.
    ``chaos`` (a :class:`~repro.durability.chaos.CrashInjector`) kills
    the run at its configured point; the :class:`SimulatedCrash` it
    raises propagates to the caller exactly like a process death would.
    """
    if checkpoint_dir is None:
        planner = DisQPlanner(
            platform, query, b_obj_cents, b_prc_cents, params, chaos=chaos
        )
        return RecoveredRun(plan=planner.preprocess(), planner=planner)

    directory = Path(checkpoint_dir)
    checkpoints = CheckpointStore(directory, CHECKPOINT_FILENAME)
    journal = Journal(directory / JOURNAL_FILENAME)
    try:
        planner = DisQPlanner(
            platform,
            query,
            b_obj_cents,
            b_prc_cents,
            params,
            checkpoints=checkpoints,
            journal=journal,
            chaos=chaos,
            resume=resume,
        )
        plan = planner.preprocess()
        return RecoveredRun(
            plan=plan,
            planner=planner,
            resumed_from=planner.resumed_from,
            journal_records=journal.record_count,
            journal_truncated_bytes=journal.truncated_bytes,
            checkpoint_path=checkpoints.path,
            journal_path=journal.path,
        )
    finally:
        # Closed even when a (simulated) crash propagates: the journal
        # is flushed per record, so nothing committed is ever lost.
        # Detach it from the (shared) recorder too — the online phase
        # reuses that recorder and must not write to a closed journal;
        # the journal's scope is the offline B_prc spend.
        journal.close()
        if getattr(platform.recorder, "journal", None) is journal:
            platform.recorder.journal = None


def durability_summary(run: RecoveredRun) -> dict:
    """The manifest ``durability`` section for one run."""
    summary: dict = {
        "resumed": run.resumed,
        "journal_records": run.journal_records,
    }
    if run.resumed_from is not None:
        summary["resumed_from"] = run.resumed_from
    if run.checkpoint_path is not None:
        summary["checkpoint"] = str(run.checkpoint_path)
    return summary
