"""Write-ahead answer journal (append-only, checksummed JSONL).

Every crowd interaction is journaled *before* it is applied to the
in-memory state: the :class:`~repro.crowd.recording.AnswerRecorder`
writes one record per freshly generated answer (replayed answers cost
nothing and are not re-journaled) and the
:class:`~repro.crowd.pricing.CostLedger` one record per charge, retry
and abandonment.  :func:`replay_journal` folds the log back into a
recorder and a ledger that match the originals exactly.

Record format — one JSON object per line::

    {"seq": 17, "kind": "value", "object": 3, "attribute": "fat",
     "index": 2, "answer": 1.25, "crc": 2903817172}

``seq`` numbers records consecutively from 0; ``crc`` is the CRC-32 of
the record's canonical JSON without the ``crc`` field.  On open, a
journal scans itself: a record that fails to parse or checksum at the
*end* of the file is a torn write from a crash — it is truncated and
the journal continues cleanly after it.  The same damage anywhere else
is real corruption and raises
:class:`~repro.errors.JournalCorruptionError`.

Idempotence: answer records carry their tape index, so re-applying a
record that is already present is a no-op (after an equality check);
this is what makes a journal that overlaps a checkpoint safe to replay.
A ``resume`` marker — appended whenever a run restores a checkpoint —
rewinds the reconstruction to the checkpointed tape lengths and ledger
totals, so the records the resumed run re-executes deterministically
land on the same indices they originally had.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.crowd.pricing import CostLedger
from repro.crowd.recording import AnswerRecorder
from repro.errors import ConfigurationError, JournalCorruptionError

#: Answer-record kinds, matching the recorder's four stores.
ANSWER_KINDS = ("value", "dismantle", "verification", "example")

#: Ledger events a journal records (all unpaid except ``charge``;
#: ``saving`` is money *avoided* by the serving engine's answer cache).
LEDGER_EVENTS = ("charge", "retry", "abandon", "saving")


def _canonical(record: dict) -> bytes:
    """Canonical JSON encoding used for checksumming."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _crc(record: dict) -> int:
    """CRC-32 over the record without its ``crc`` field."""
    body = {key: value for key, value in record.items() if key != "crc"}
    return zlib.crc32(_canonical(body)) & 0xFFFFFFFF


def _encode_answer(kind: str, key, index: int, item, worker: int | None = None) -> dict:
    """One answer record, keyed per the recorder's store for ``kind``."""
    if kind == "value":
        object_id, attribute = key
        record = {"object": int(object_id), "attribute": str(attribute)}
        if worker is not None:
            # Optional provenance for reliability inference; absent for
            # unattributed runs so their journal bytes are unchanged.
            record["worker"] = int(worker)
        answer = float(item)
    elif kind == "dismantle":
        record = {"attribute": str(key)}
        answer = str(item)
    elif kind == "verification":
        attribute, candidate = key
        record = {"attribute": str(attribute), "candidate": str(candidate)}
        answer = bool(item)
    elif kind == "example":
        record = {"targets": [str(t) for t in key]}
        object_id, values = item
        answer = {
            "object": int(object_id),
            "values": {str(k): float(v) for k, v in values.items()},
        }
    else:
        raise ConfigurationError(f"unknown journal answer kind: {kind!r}")
    record["kind"] = kind
    record["index"] = int(index)
    record["answer"] = answer
    return record


def _decode_answer(record: dict):
    """``(store_name, key, value)`` for one answer record."""
    kind = record["kind"]
    answer = record["answer"]
    if kind == "value":
        return "_values", (int(record["object"]), str(record["attribute"])), float(answer)
    if kind == "dismantle":
        return "_dismantles", str(record["attribute"]), str(answer)
    if kind == "verification":
        return "_votes", (str(record["attribute"]), str(record["candidate"])), bool(answer)
    if kind == "example":
        value = (
            int(answer["object"]),
            {str(k): float(v) for k, v in answer["values"].items()},
        )
        return "_examples", tuple(str(t) for t in record["targets"]), value
    raise JournalCorruptionError(f"unknown answer kind in journal: {kind!r}")


def _scan(path: Path) -> tuple[list[dict], int, int]:
    """Parse a journal file.

    Returns ``(records, valid_bytes, total_bytes)``.  A record that
    fails to parse, checksum, or sequence-check is tolerated only as
    the *final* content of the file (a torn write); ``valid_bytes`` then
    stops before it.  The same failure earlier raises
    :class:`~repro.errors.JournalCorruptionError`.
    """
    data = path.read_bytes()
    records: list[dict] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        end = len(data) if newline < 0 else newline + 1
        line = data[offset:end].strip()
        if line:
            record = _parse_line(line, expected_seq=len(records))
            if record is None:
                # Damaged record: only acceptable as the torn tail.
                if data[end:].strip():
                    raise JournalCorruptionError(
                        f"corrupt journal record at byte {offset} of {path} "
                        f"(record {len(records)}) with valid records after it"
                    )
                return records, offset, len(data)
            records.append(record)
        offset = end
    return records, len(data), len(data)


def _parse_line(line: bytes, expected_seq: int) -> dict | None:
    """Decode one journal line; ``None`` when damaged."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or "crc" not in record or "seq" not in record:
        return None
    if record["crc"] != _crc(record):
        return None
    if record["seq"] != expected_seq:
        return None
    return record


class Journal:
    """An append-only, checksummed interaction log.

    Opening an existing journal scans and repairs it (truncating a torn
    final record); appends are flushed per record so the file is
    durable up to the last completed interaction.  The write methods
    are duck-typed against what :class:`~repro.crowd.recording.
    AnswerRecorder` and :class:`~repro.crowd.pricing.CostLedger` call,
    so the crowd layer needs no import of this package.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.truncated_bytes = 0
        self._seq = 0
        if self.path.exists():
            records, valid_bytes, total_bytes = _scan(self.path)
            if valid_bytes < total_bytes:
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_bytes)
                self.truncated_bytes = total_bytes - valid_bytes
            self._seq = len(records)
        self._handle = open(self.path, "a", encoding="utf-8")

    @property
    def record_count(self) -> int:
        """Number of committed records (written and scanned)."""
        return self._seq

    def append(self, record: dict) -> None:
        """Commit one record: assign ``seq``, checksum, write, flush."""
        record = dict(record)
        record["seq"] = self._seq
        record["crc"] = _crc(record)
        self._handle.write(_canonical(record).decode("utf-8") + "\n")
        self._handle.flush()
        self._seq += 1

    # -- recorder / ledger hooks (duck-typed) ---------------------------

    def record_answer(
        self, kind: str, key, index: int, item, worker: int | None = None
    ) -> None:
        """Journal one freshly generated crowd answer before it is kept.

        ``worker`` (value answers only) records which simulated worker
        produced the answer, so replay can rebuild the recorder's
        provenance tapes for reliability-weighted aggregation.
        """
        self.append(_encode_answer(kind, key, index, item, worker=worker))

    def record_ledger(
        self, event: str, category: str, cost: float = 0.0, count: int = 1
    ) -> None:
        """Journal one ledger entry (charge/retry/abandon) before it applies."""
        if event not in LEDGER_EVENTS:
            raise ConfigurationError(f"unknown ledger journal event: {event!r}")
        self.append(
            {
                "kind": "ledger",
                "event": event,
                "category": str(category),
                "cost": float(cost),
                "count": int(count),
            }
        )

    def record_lost(self, key, count: int) -> None:
        """Journal value answers lost to exhausted retries for one key.

        The serving engine's fault-injected stream consumes one stream
        index per *attempted* answer, obtained or not, so its per-key
        stream cursor runs ahead of the cache by the number of lost
        answers.  Journaling each loss keeps that cursor durable: a
        resumed run replays ``Σ count`` per key and continues the
        stream exactly where the crashed run would have, never
        re-drawing (or double-buying) an index it already consumed.
        """
        if count < 1:
            raise ConfigurationError(f"lost count must be >= 1: {count}")
        object_id, attribute = key
        self.append(
            {
                "kind": "lost",
                "object": int(object_id),
                "attribute": str(attribute),
                "count": int(count),
            }
        )

    def mark_resume(self, phase: str, recorder: AnswerRecorder, ledger: CostLedger) -> None:
        """Append a resume marker rewinding replay to a checkpoint state.

        The marker embeds the restored recorder's per-key tape lengths
        and the restored ledger totals; replay truncates its
        reconstruction to exactly that state before applying the
        re-executed records that follow.
        """
        self.append(
            {
                "kind": "resume",
                "phase": str(phase),
                "tapes": recorder.tape_lengths(),
                "ledger": ledger.snapshot(),
            }
        )

    def close(self) -> None:
        """Flush and close the underlying file handle."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: str | Path) -> list[dict]:
    """All committed records of a journal file (torn tail ignored)."""
    return _scan(Path(path))[0]


@dataclass
class JournalReplay:
    """The state reconstructed from one journal.

    Attributes
    ----------
    recorder:
        An :class:`~repro.crowd.recording.AnswerRecorder` holding every
        journaled answer (exactly the tapes of the live recorder).
    ledger:
        A :class:`~repro.crowd.pricing.CostLedger` with the journaled
        charges, retries and abandons (exactly the live ledger).
    record_count:
        Committed records replayed.
    resumes:
        Resume markers encountered (0 for an uninterrupted run).
    lost:
        ``(object_id, attribute) -> answers lost to exhausted retries``
        (the serving engine's fault-stream cursor offsets; empty for
        offline journals and fault-free serving runs).
    """

    recorder: AnswerRecorder
    ledger: CostLedger
    record_count: int
    resumes: int
    lost: dict = field(default_factory=dict)


def _apply_answer(recorder: AnswerRecorder, record: dict) -> None:
    """Apply one answer record idempotently, by tape index."""
    store_name, key, value = _decode_answer(record)
    store = getattr(recorder, store_name)
    sequence = store.setdefault(key, [])
    index = int(record["index"])
    if index < len(sequence):
        if sequence[index] != value:
            raise JournalCorruptionError(
                f"journal record {record['seq']} rewrites tape "
                f"{record['kind']}:{key!r}[{index}] with a different answer"
            )
        return
    if index > len(sequence):
        raise JournalCorruptionError(
            f"journal record {record['seq']} leaves a gap in tape "
            f"{record['kind']}:{key!r} (index {index}, have {len(sequence)})"
        )
    sequence.append(value)
    if record["kind"] == "value" and "worker" in record:
        recorder.note_value_worker(key[0], key[1], index, int(record["worker"]))


def _rewind(recorder: AnswerRecorder, tapes: dict) -> None:
    """Truncate the reconstruction to a resume marker's tape lengths."""
    decoders = {
        "value": ("_values", lambda e: (int(e[0]), str(e[1])), 2),
        "dismantle": ("_dismantles", lambda e: str(e[0]), 1),
        "verification": ("_votes", lambda e: (str(e[0]), str(e[1])), 2),
        "example": ("_examples", lambda e: tuple(str(t) for t in e[0]), 1),
    }
    for kind, (store_name, decode_key, key_width) in decoders.items():
        store = getattr(recorder, store_name)
        keep: dict = {}
        for entry in tapes.get(kind, []):
            keep[decode_key(entry)] = int(entry[key_width])
        for key in list(store):
            if key not in keep:
                del store[key]
        for key, length in keep.items():
            tape = store.get(key, [])
            if len(tape) < length:
                raise JournalCorruptionError(
                    f"resume marker expects {length} {kind} answers for "
                    f"{key!r} but the journal only holds {len(tape)}"
                )
            del tape[length:]
            store[key] = tape
    # Provenance tapes shadow the value store: drop or truncate them in
    # lockstep (a shorter tape is fine — missing suffix positions read
    # as unattributed).
    workers = recorder._value_workers
    for key in list(workers):
        if key not in recorder._values:
            del workers[key]
        else:
            del workers[key][len(recorder._values[key]):]


def replay_journal(path: str | Path) -> JournalReplay:
    """Reconstruct recorder and ledger state from a journal file.

    Torn trailing records are ignored (they were never applied — the
    journal is write-ahead, but both the recorder and the ledger only
    act *after* their journal write returns); mid-file corruption and
    contradictory records raise
    :class:`~repro.errors.JournalCorruptionError`.
    """
    records = read_journal(path)
    recorder = AnswerRecorder()
    ledger = CostLedger()
    resumes = 0
    lost: dict = {}
    for record in records:
        kind = record.get("kind")
        if kind in ANSWER_KINDS:
            _apply_answer(recorder, record)
        elif kind == "lost":
            key = (int(record["object"]), str(record["attribute"]))
            lost[key] = lost.get(key, 0) + int(record["count"])
        elif kind == "ledger":
            event = record["event"]
            if event == "charge":
                ledger.record(record["category"], record["cost"], record["count"])
            elif event == "retry":
                ledger.record_retry(record["category"], record["count"])
            elif event == "abandon":
                ledger.record_abandon(record["category"], record["count"])
            elif event == "saving":
                ledger.record_saving(
                    record["category"], record["cost"], record["count"]
                )
            else:
                raise JournalCorruptionError(
                    f"unknown ledger event in journal: {event!r}"
                )
        elif kind == "resume":
            resumes += 1
            _rewind(recorder, record["tapes"])
            ledger.restore(record["ledger"])
        else:
            raise JournalCorruptionError(f"unknown journal record kind: {kind!r}")
    return JournalReplay(
        recorder=recorder,
        ledger=ledger,
        record_count=len(records),
        resumes=resumes,
        lost=lost,
    )
