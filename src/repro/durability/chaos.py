"""Chaos harness: deterministic simulated process crashes.

:class:`CrashInjector` kills a run at a configurable point — after a
given number of paid crowd interactions, or at a named phase boundary
(immediately *after* that phase's checkpoint is written).  It raises
:class:`SimulatedCrash`, which deliberately does **not** derive from
:class:`~repro.errors.ReproError`: the planner's resilience layer
catches ``ReproError`` subclasses (budget exhaustion, crowd faults) and
degrades gracefully, but a process crash must tear the whole run down
exactly as a real ``kill -9`` would — nothing may absorb it.
"""

from __future__ import annotations

from repro.core.disq import PHASES
from repro.errors import ConfigurationError

#: Kill points inside the serving engine's wave loop, in wave order.
#: ``serve.need`` fires after the serial need-computation, ``serve.
#: generate`` after parallel answer generation (before any side
#: effect), ``serve.commit`` after the charge/journal/insert loop,
#: ``serve.evaluate`` after query evaluation, and ``serve.wave`` after
#: the wave checkpoint is written — mirroring the offline pipeline's
#: post-checkpoint phase boundaries.
SERVE_PHASES = (
    "serve.need",
    "serve.generate",
    "serve.commit",
    "serve.evaluate",
    "serve.wave",
)


class SimulatedCrash(Exception):
    """A simulated process death (not a :class:`~repro.errors.ReproError`).

    Attributes
    ----------
    where:
        Human-readable description of the kill point.
    interactions:
        Paid crowd interactions completed when the crash fired.
    """

    def __init__(self, where: str, interactions: int) -> None:
        super().__init__(f"simulated crash {where}")
        self.where = where
        self.interactions = interactions


class CrashInjector:
    """Raises :class:`SimulatedCrash` at one configured kill point.

    Parameters
    ----------
    at_interactions:
        Crash once this many crowd answers have been paid for (the
        platform notes every charged batch).  The crash fires *after*
        the batch that crosses the threshold is charged and journaled,
        mimicking a process death between two interactions.
    at_phase:
        Crash at this phase boundary (one of
        :data:`~repro.core.disq.PHASES` for the offline pipeline, or
        :data:`SERVE_PHASES` for the serving engine's wave loop),
        after its checkpoint is saved.

    The injector fires at most once (``crashed`` stays True after), so
    a resumed run that re-crosses the recorded interaction count — as a
    bit-identical resume necessarily does — is not killed again when
    the same injector object is reused.
    """

    def __init__(
        self,
        at_interactions: int | None = None,
        at_phase: str | None = None,
    ) -> None:
        if at_interactions is None and at_phase is None:
            raise ConfigurationError(
                "CrashInjector needs at_interactions and/or at_phase"
            )
        if at_interactions is not None and at_interactions < 1:
            raise ConfigurationError(
                f"at_interactions must be >= 1: {at_interactions}"
            )
        if at_phase is not None and at_phase not in PHASES + SERVE_PHASES:
            raise ConfigurationError(
                f"unknown phase {at_phase!r}; choose from "
                f"{PHASES + SERVE_PHASES}"
            )
        self.at_interactions = at_interactions
        self.at_phase = at_phase
        self.interactions = 0
        self.crashed = False

    def note_interactions(self, count: int) -> None:
        """Count ``count`` paid answers; crash when the threshold is crossed."""
        self.interactions += int(count)
        if (
            not self.crashed
            and self.at_interactions is not None
            and self.interactions >= self.at_interactions
        ):
            self.crashed = True
            raise SimulatedCrash(
                f"after {self.interactions} crowd interactions",
                self.interactions,
            )

    def phase_boundary(self, phase: str) -> None:
        """Crash at the configured phase boundary (post-checkpoint)."""
        if not self.crashed and self.at_phase == phase:
            self.crashed = True
            raise SimulatedCrash(
                f"at the {phase!r} phase boundary", self.interactions
            )
