"""Atomic phase-boundary checkpoints for the DisQ pipeline.

A checkpoint is one JSON document holding the complete deterministic
machine state at a phase boundary: planner bookkeeping, the statistics
store, the crowd platform (cursors, every RNG, budget, ledger,
recorder), and the allocation when one exists.  Restoring it and
re-executing the remaining phases reproduces the uninterrupted run
bit for bit.

Writes are crash-safe: the document is written to a temporary file in
the same directory and moved into place with :func:`os.replace`, so a
reader only ever sees the old complete checkpoint or the new complete
checkpoint — never a torn one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import CheckpointError

#: Schema version written into every checkpoint document.
CHECKPOINT_VERSION = 1


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives in the target directory so the final
    rename stays on one filesystem and is atomic; it is flushed and
    fsynced before the rename so a crash immediately after cannot
    surface an empty file under the final name.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, target)
    finally:
        temp.unlink(missing_ok=True)


class CheckpointStore:
    """Load/save JSON checkpoints under one directory, atomically."""

    def __init__(self, directory: str | Path, filename: str) -> None:
        self.directory = Path(directory)
        self.filename = filename

    @property
    def path(self) -> Path:
        return self.directory / self.filename

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, payload: dict) -> None:
        """Atomically persist one checkpoint document."""
        document = dict(payload)
        document.setdefault("version", CHECKPOINT_VERSION)
        atomic_write_text(self.path, json.dumps(document, sort_keys=True))

    def load(self) -> dict:
        """Read the checkpoint back, validating its schema version."""
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint at {self.path}") from None
        except ValueError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise CheckpointError(f"checkpoint {self.path} is not an object")
        version = document.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has schema version {version!r}; "
                f"this build reads version {CHECKPOINT_VERSION}"
            )
        return document
