"""Crash safety for the preprocessing pipeline.

The paper's crowd answers were "recorded in a database and reused in
following experiments" (Section 5) precisely because crowd answers are
expensive and slow to re-buy.  This package makes the in-memory
pipeline state durable:

* :mod:`~repro.durability.journal` — a write-ahead JSONL log of every
  crowd interaction (answers, charges, retries), checksummed per
  record so a torn tail is detected and truncated, never double
  counted.  Replaying a journal reconstructs the
  :class:`~repro.crowd.recording.AnswerRecorder` and
  :class:`~repro.crowd.pricing.CostLedger` exactly.
* :mod:`~repro.durability.checkpoint` — atomic phase-boundary
  snapshots of the full DisQ planner state (statistics, frontier,
  allocation, platform RNGs), written via temp-file + ``os.replace``.
* :mod:`~repro.durability.chaos` — a :class:`CrashInjector` that
  raises :class:`SimulatedCrash` at configurable interaction counts or
  phase boundaries, for the crash/resume test matrix.
* :mod:`~repro.durability.recovery` — :func:`run_disq`, the
  crash-safe entry point: ``run_disq(..., checkpoint_dir=...,
  resume=True)`` continues an interrupted run and produces a
  bit-identical plan and ledger to an uninterrupted one.
"""

from repro.durability.chaos import CrashInjector, SimulatedCrash
from repro.durability.checkpoint import CheckpointStore, atomic_write_text
from repro.durability.journal import Journal, JournalReplay, read_journal, replay_journal
from repro.durability.recovery import (
    CHECKPOINT_FILENAME,
    JOURNAL_FILENAME,
    RecoveredRun,
    durability_summary,
    run_disq,
)

__all__ = [
    "CHECKPOINT_FILENAME",
    "JOURNAL_FILENAME",
    "CheckpointStore",
    "CrashInjector",
    "Journal",
    "JournalReplay",
    "RecoveredRun",
    "SimulatedCrash",
    "atomic_write_text",
    "durability_summary",
    "read_journal",
    "replay_journal",
    "run_disq",
]
